"""CPU resource models.

A simulated server consumes CPU on its node for every request it handles.
Two queueing disciplines are provided behind one interface:

* :class:`PsCpu` — egalitarian **processor sharing**, the standard model for
  a time-sliced CPU serving many concurrent request threads.  Implemented
  with the classic *virtual time* technique, O(log n) per arrival/departure.
* :class:`FifoCpu` — a single-server FIFO queue (M/G/1 when fed by Poisson
  arrivals), O(1) per event; cheaper, and adequate when per-request latency
  distribution is not under study.

Both track cumulative *busy time*, which is exactly the signal the paper's
probes sample: CPU utilization over the last second, averaged spatially over
the tier and temporally by a moving average.

Thrashing
---------
``Figure 8`` of the paper shows latencies of hundreds of seconds when the
static (unmanaged) database saturates — the authors call it "a thrashing of
the database".  Pure queueing saturation cannot produce that shape in a
closed-loop system (response time would plateau around
``N / X_max - think``).  We model thrashing explicitly: beyond a concurrency
knee the *effective capacity* of the resource decays
(:class:`ThrashingCurve`), representing memory pressure, lock convoys and
context-switch overhead.  The managed system never enters that regime, so
the model only affects the static baseline — as in the paper.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Optional

from repro.simulation.kernel import Event, SimKernel
from repro.simulation.process import Signal

CapacityModel = Callable[[int], float]


def constant_capacity(n: int) -> float:
    """Capacity model of an ideal CPU: full speed at any concurrency."""
    return 1.0


class ThrashingCurve:
    """Effective capacity decays beyond a concurrency knee.

    ``capacity(n) = 1                          for n <= knee``
    ``capacity(n) = 1 / (1 + slope*(n - knee)) for n >  knee``

    with an optional ``floor`` so the resource never fully stalls.
    """

    def __init__(self, knee: int = 32, slope: float = 0.05, floor: float = 0.05):
        if knee < 0:
            raise ValueError("knee must be >= 0")
        if slope < 0:
            raise ValueError("slope must be >= 0")
        if not 0.0 < floor <= 1.0:
            raise ValueError("floor must be in (0, 1]")
        self.knee = knee
        self.slope = slope
        self.floor = floor

    def __call__(self, n: int) -> float:
        if n <= self.knee:
            return 1.0
        return max(self.floor, 1.0 / (1.0 + self.slope * (n - self.knee)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ThrashingCurve(knee={self.knee}, slope={self.slope}, floor={self.floor})"


class CpuJob:
    """A unit of CPU work submitted to a resource.

    ``demand`` is expressed in seconds of CPU time *at full speed*; the
    resource's ``speed`` factor and capacity model determine how long the job
    actually takes.  ``done`` fires with the job when service completes.

    ``weight`` models a *cohort* of identical concurrent requests as one
    job: a job of weight ``w`` counts as ``w`` concurrent requests for
    processor sharing and the capacity model, and ``demand`` is the summed
    demand of all ``w`` constituents (each constituent thus contributes
    ``demand / w``).  All constituents finish together.
    """

    __slots__ = (
        "demand",
        "weight",
        "done",
        "tag",
        "submitted_at",
        "completed_at",
        "_vfinish",
    )

    def __init__(
        self, kernel: SimKernel, demand: float, tag: object = None, weight: int = 1
    ):
        if demand < 0:
            raise ValueError("demand must be >= 0")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self.demand = demand
        self.weight = weight
        self.done = Signal(kernel)
        self.tag = tag
        self.submitted_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._vfinish = 0.0

    @property
    def sojourn(self) -> Optional[float]:
        """Queueing + service time, once completed."""
        if self.completed_at is None or self.submitted_at is None:
            return None
        return self.completed_at - self.submitted_at


class ResourceStopped(RuntimeError):
    """Raised to jobs aborted because their resource was shut down."""


class CpuResource:
    """Common bookkeeping for CPU models (busy time, counters)."""

    def __init__(self, kernel: SimKernel, speed: float = 1.0, name: str = "cpu"):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.kernel = kernel
        self.speed = speed
        self.name = name
        #: fail-slow / gray-failure hook: fraction of nominal speed actually
        #: delivered (1.0 = healthy).  ``_espeed`` caches ``speed *
        #: degradation`` — it is what every rate computation reads.
        self.degradation = 1.0
        self._espeed = speed
        self.busy_integral = 0.0  # cumulative seconds with >=1 active job
        self.completed = 0
        self.service_delivered = 0.0  # cumulative CPU-seconds of demand served
        self._last_update = kernel.now

    # -- interface -----------------------------------------------------
    @property
    def active_jobs(self) -> int:
        raise NotImplementedError

    def submit(self, job: CpuJob) -> CpuJob:
        raise NotImplementedError

    def abort_all(self, error: Optional[BaseException] = None) -> int:
        raise NotImplementedError

    # -- degradation (fail-slow / gray failures) ------------------------
    def set_degradation(self, factor: float) -> None:
        """Scale the delivered speed by ``factor`` (1.0 restores health).

        Busy-time accounting is settled at the old rate first, so a probe
        sampling across the change sees correct utilization.  Subclasses
        with in-flight completion schedules must also resettle those.
        """
        if factor <= 0:
            raise ValueError("degradation factor must be positive")
        self._advance_accounting()
        self.degradation = factor
        self._espeed = self.speed * factor

    # -- utilization sampling -------------------------------------------
    def busy_time(self) -> float:
        """Cumulative busy time up to the current instant."""
        self._advance_accounting()
        return self.busy_integral

    def _advance_accounting(self) -> None:
        now = self.kernel.now
        if now > self._last_update:
            if self.active_jobs > 0:
                self.busy_integral += now - self._last_update
            self._last_update = now


class PsCpu(CpuResource):
    """Processor-sharing CPU with optional capacity degradation.

    With ``n`` active jobs each job is served at rate
    ``speed * capacity(n) / n``.  Virtual time ``V`` advances at that rate;
    a job of demand ``d`` arriving when virtual time is ``V0`` finishes when
    ``V`` reaches ``V0 + d``.  A heap keyed on finish virtual time yields the
    next completion in O(log n).

    Completion wake-ups are *lazy*: an arrival that cannot preempt the head
    completion leaves the pending wake-up event untouched even though the
    head's real finish time just moved later (the per-job rate dropped).
    The wake-up then fires early, finds nothing due, and reschedules for the
    recomputed finish time.  Early firing is always safe — arrivals only
    ever push completions *later* — and it replaces the former
    cancel-and-reschedule per arrival (and its heap tombstone) with at most
    one extra no-op dispatch per rate change.
    """

    def __init__(
        self,
        kernel: SimKernel,
        speed: float = 1.0,
        capacity_model: CapacityModel = constant_capacity,
        name: str = "cpu",
    ):
        super().__init__(kernel, speed, name)
        self.capacity_model = capacity_model
        # Ideal CPUs (no thrashing curve) skip the capacity-model call on
        # every rate computation — the dominant case for web/app tiers.
        self._ideal = capacity_model is constant_capacity
        self._vnow = 0.0
        self._vlast = kernel.now  # real time of last virtual-time update
        self._heap: list[tuple[float, int, CpuJob]] = []
        self._seq = itertools.count()
        self._live = 0  # summed weight of non-aborted entries in the heap
        #: generation token of the current wake-up; superseding a wake is a
        #: counter bump, not an event cancellation (no heap tombstones)
        self._wake_token = 0
        self._wake_at = float("inf")  # real time of the pending wake-up

    @property
    def active_jobs(self) -> int:
        return self._live

    def _rate(self) -> float:
        """Virtual-time advance rate (per-job service rate), 0 when idle."""
        n = self._live
        if n == 0:
            return 0.0
        return self._espeed * self.capacity_model(n) / n

    def set_degradation(self, factor: float) -> None:
        """Degrade (or restore) the delivered speed mid-stream.

        Virtual time is advanced at the *old* rate before the switch, then
        the pending completion wake-up is recomputed at the new rate — jobs
        already in service finish later (or earlier, on restore) by exactly
        the remaining-demand ratio.
        """
        if factor <= 0:
            raise ValueError("degradation factor must be positive")
        self._advance_accounting()
        self._advance_virtual()
        self.degradation = factor
        self._espeed = self.speed * factor
        self._reschedule_completion()

    def _advance_virtual(self) -> None:
        now = self.kernel.now
        if now > self._vlast:
            self._vnow += (now - self._vlast) * self._rate()
        self._vlast = now

    def submit(self, job: CpuJob) -> CpuJob:
        """Add a job to the shared processor.  ``job.done`` fires on
        completion.  Zero-demand jobs complete immediately."""
        kernel = self.kernel
        now = kernel._now  # hot path: skip the property
        # Inlined _advance_accounting + _advance_virtual (hot path).
        if now > self._last_update:
            if self._live > 0:
                self.busy_integral += now - self._last_update
            self._last_update = now
        if now > self._vlast:
            n = self._live
            if n:
                rate = (
                    self._espeed / n
                    if self._ideal
                    else self._espeed * self.capacity_model(n) / n
                )
                self._vnow += (now - self._vlast) * rate
        self._vlast = now
        job.submitted_at = now
        weight = job.weight
        if job.demand == 0.0:
            job.completed_at = now
            self.completed += weight
            job.done.succeed(job)
            return job
        vfinish = self._vnow + (job.demand / weight if weight != 1 else job.demand)
        job._vfinish = vfinish
        heapq.heappush(self._heap, (vfinish, next(self._seq), job))
        self._live += weight
        # Wake-up fast path: reschedule only if the new job preempts the
        # pending wake; otherwise the (now early) wake recomputes lazily.
        n = self._live
        rate = (
            self._espeed / n
            if self._ideal
            else self._espeed * self.capacity_model(n) / n
        )
        wake = now + (self._heap[0][0] - self._vnow) / rate
        if wake < self._wake_at:
            self._wake_token += 1
            self._wake_at = wake
            # _post_at directly: wake >= now by construction, token-guarded.
            kernel._post_at(wake, self._complete_next, (self._wake_token,))
        return job

    def _reschedule_completion(self) -> None:
        """Slow path: recompute the wake-up after aborts or completions."""
        self._wake_token += 1  # invalidate any pending wake
        self._wake_at = float("inf")
        # Drop any aborted entries sitting at the top of the heap.
        while self._heap and self._heap[0][2].done.fired:
            heapq.heappop(self._heap)
        if not self._heap:
            return
        rate = self._rate()
        assert rate > 0.0, "live jobs but zero rate"
        wake = self.kernel.now + max(0.0, (self._heap[0][0] - self._vnow) / rate)
        self._wake_at = wake
        self.kernel._post_at(wake, self._complete_next, (self._wake_token,))

    def _complete_next(self, token: int) -> None:
        if token != self._wake_token:
            return  # superseded wake-up
        kernel = self.kernel
        now = kernel._now  # hot path: skip the property
        # Inlined _advance_accounting + _advance_virtual (hot path).
        if now > self._last_update:
            if self._live > 0:
                self.busy_integral += now - self._last_update
            self._last_update = now
        vnow = self._vnow
        if now > self._vlast:
            n = self._live
            if n:
                rate = (
                    self._espeed / n
                    if self._ideal
                    else self._espeed * self.capacity_model(n) / n
                )
                vnow += (now - self._vlast) * rate
                self._vnow = vnow
        self._vlast = now
        # Complete every job whose virtual finish time has been reached
        # (simultaneous completions happen with equal demands).  A wake-up
        # may arrive early (see class docstring); it then completes nothing
        # and simply reschedules below.
        heap = self._heap
        vdue = vnow + 1e-9 * (1.0 if -1.0 < vnow < 1.0 else abs(vnow))
        while heap and heap[0][0] <= vdue:
            _, _, job = heapq.heappop(heap)
            if job.done.fired:  # aborted entry
                continue
            weight = job.weight
            self._live -= weight
            job.completed_at = now
            self.completed += weight
            self.service_delivered += job.demand
            job.done.succeed(job)
        # Reschedule for the (possibly moved) next completion.
        while heap and heap[0][2].done.fired:
            heapq.heappop(heap)
        if heap:
            n = self._live
            rate = (
                self._espeed / n
                if self._ideal
                else self._espeed * self.capacity_model(n) / n
            )
            wake = now + (heap[0][0] - vnow) / rate
            if wake < now:
                wake = now
            self._wake_token += 1
            self._wake_at = wake
            kernel._post_at(wake, self._complete_next, (self._wake_token,))
        else:
            self._wake_token += 1
            self._wake_at = float("inf")

    def abort_all(self, error: Optional[BaseException] = None) -> int:
        """Fail every in-flight job (e.g. the hosting server crashed).

        Returns the number of jobs aborted.  Virtual-time state is reset so
        a reused resource serves a fresh job stream from a clean baseline
        (no stale ``_vlast``/``_vnow`` from the aborted run).
        """
        self._advance_accounting()
        self._advance_virtual()
        err = error if error is not None else ResourceStopped(self.name)
        aborted = 0
        for _, _, job in self._heap:
            if not job.done.fired:
                job.done.fail(err)
                aborted += 1
        self._heap.clear()
        self._live = 0
        self._wake_token += 1  # invalidate any pending wake
        self._vnow = 0.0
        self._vlast = self.kernel.now
        self._wake_at = float("inf")
        return aborted


class FifoCpu(CpuResource):
    """Single-server FIFO queue.

    The job at the head of the queue is served at rate
    ``speed * capacity(n)`` where ``n`` is the queue length *at service
    start* (capacity is not re-evaluated mid-service; thrashing studies
    should use :class:`PsCpu`).
    """

    def __init__(
        self,
        kernel: SimKernel,
        speed: float = 1.0,
        capacity_model: CapacityModel = constant_capacity,
        name: str = "cpu",
    ):
        super().__init__(kernel, speed, name)
        self.capacity_model = capacity_model
        self._queue: deque[CpuJob] = deque()
        self._in_service: Optional[CpuJob] = None
        self._completion_event: Optional[Event] = None

    @property
    def active_jobs(self) -> int:
        return len(self._queue) + (1 if self._in_service is not None else 0)

    def submit(self, job: CpuJob) -> CpuJob:
        self._advance_accounting()
        job.submitted_at = self.kernel.now
        if job.demand == 0.0:
            job.completed_at = self.kernel.now
            self.completed += job.weight
            job.done.succeed(job)
            return job
        self._queue.append(job)
        if self._in_service is None:
            self._start_next()
        return job

    def _start_next(self) -> None:
        if not self._queue:
            return
        job = self._queue.popleft()
        self._in_service = job
        rate = self._espeed * self.capacity_model(self.active_jobs)
        service_time = job.demand / rate
        self._completion_event = self.kernel.schedule(
            service_time, self._complete, job
        )

    def _complete(self, job: CpuJob) -> None:
        self._advance_accounting()
        self._completion_event = None
        self._in_service = None
        job.completed_at = self.kernel.now
        self.completed += job.weight
        self.service_delivered += job.demand
        job.done.succeed(job)
        self._start_next()

    def abort_all(self, error: Optional[BaseException] = None) -> int:
        self._advance_accounting()
        err = error if error is not None else ResourceStopped(self.name)
        aborted = 0
        if self._in_service is not None:
            self._in_service.done.fail(err)
            self._in_service = None
            aborted += 1
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        for job in self._queue:
            job.done.fail(err)
            aborted += 1
        self._queue.clear()
        return aborted
