"""Deterministic named random streams.

Every stochastic component (each emulated client, each load balancer using a
Random policy, the failure injector...) draws from its own
``numpy.random.Generator``, derived from a single experiment seed and a
stable component name.  This gives two properties the benchmarks rely on:

* **Reproducibility** — the same seed replays an experiment exactly;
* **Insensitivity to composition** — adding a component does not perturb the
  streams of existing components (names, not creation order, key streams).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_words(name: str) -> list[int]:
    """Map a component name to a stable list of 32-bit words."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


class RngStreams:
    """Factory of named, independent random generators.

    Example
    -------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("client-0")
    >>> b = streams.get("client-1")
    >>> a2 = RngStreams(seed=42).get("client-0")
    >>> float(a.random()) == float(a2.random())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError("seed must be an integer")
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use).

        Repeated calls with the same name return the *same* generator object,
        so a component may re-fetch its stream without resetting it.
        """
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence([self.seed, *_name_words(name)])
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (same initial state as
        the first :meth:`get` for that name)."""
        seq = np.random.SeedSequence([self.seed, *_name_words(name)])
        return np.random.default_rng(seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={len(self._cache)})"
