"""RUBiS-like workload model.

The paper evaluates with RUBiS, "a J2EE application benchmark based on
servlets, which implements an auction site modeled over eBay.  It defines
26 web interactions ... RUBiS also provides a benchmarking tool that
emulates web client behaviors and generates a tunable workload" (§5.2).

This package reproduces that: the 26 interactions with a browse/bid
transition structure (:mod:`~repro.workload.rubis`), service-demand
calibration matching the paper's operating points
(:mod:`~repro.workload.calibration`), closed-loop emulated clients with
exponential think times (:mod:`~repro.workload.clients`) and the
80→500→80 ramp profile (:mod:`~repro.workload.profiles`).
"""

from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.clients import ClientEmulator
from repro.workload.profiles import (
    ConstantProfile,
    PiecewiseProfile,
    RampProfile,
    WorkloadProfile,
)
from repro.workload.rubis import (
    INTERACTIONS,
    Interaction,
    MarkovNavigator,
    MixNavigator,
    RubisModel,
)
from repro.workload.traces import (
    RequestRecord,
    TraceRecorder,
    TraceReplayer,
    WorkloadTrace,
)

__all__ = [
    "RequestRecord",
    "TraceRecorder",
    "TraceReplayer",
    "WorkloadTrace",
    "Calibration",
    "ClientEmulator",
    "ConstantProfile",
    "DEFAULT_CALIBRATION",
    "INTERACTIONS",
    "Interaction",
    "MarkovNavigator",
    "MixNavigator",
    "PiecewiseProfile",
    "RampProfile",
    "RubisModel",
    "WorkloadProfile",
]
