"""Service-demand calibration.

The paper's absolute numbers depend on its 2006-era hardware; what must be
preserved is the *operating-point structure* of the closed-loop system.
With ``N`` clients, think time ``Z`` and response time ``R``, throughput is
``X = N / (Z + R)`` (interactive response-time law).  A tier with ``k``
replicas and per-request demand ``d`` runs at utilization ``U = X * d / k``
(reads load one replica; full-mirrored writes load all of them).

Solving for the paper's events with the thresholds (max = 0.80):

* Table 1: at N = 80, X ≈ 12 req/s ⇒ Z ≈ 80/12 − R ≈ 6.5 s.
* Fig. 5: DB tier scales 1→2 near N ≈ 180 ⇒ X ≈ 28 ⇒ effective DB demand
  ``0.85·d_read + 0.15·d_write ≈ 0.8/28 ≈ 28 ms``; with a 15 % write mix,
  ``d_read = 30 ms`` and ``d_write = 15 ms`` give 28.8 ms.
* Fig. 5: app tier scales 1→2 near N ≈ 420 ⇒ X ≈ 62 ⇒
  ``d_app ≈ 0.8/62 ≈ 13 ms`` (split 11 ms servlet + 2 ms page generation).
* DB tier scales 2→3 near X ≈ 53 (N ≈ 350) — the paper saw ≈ 320; and at
  N = 500 three backends run at ≈ 0.79 < 0.80, so the peak configuration
  (2 Tomcat + 3 MySQL) absorbs the full load, as in the paper.

Per-interaction demands are these means scaled by relative weights (a
search is heavier than Home); the mix-weighted means equal the calibrated
values (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the workload/capacity model."""

    # Closed-loop client behaviour
    think_time_mean_s: float = 6.5

    # Mean service demands (seconds of CPU at unit node speed)
    app_demand_pre_s: float = 0.011      # servlet execution before the query
    app_demand_post_s: float = 0.002     # response generation after the query
    db_read_demand_s: float = 0.030
    db_write_demand_s: float = 0.015
    static_demand_s: float = 0.002       # static document (Apache tier)

    # Fraction of client requests that target static documents (0 in the
    # paper's servlets-only evaluation; used by the three-tier extension)
    static_fraction: float = 0.0

    # Demand variability: demands are Gamma-distributed with this shape
    # (shape 4 => coefficient of variation 0.5); None disables variability.
    demand_gamma_shape: float = 4.0

    # Write fraction targeted by the interaction mix (RUBiS bidding mix)
    write_fraction: float = 0.15

    # Thrashing regime of the database nodes (drives Fig. 8's collapse);
    # tuned so the static run's average latency lands near the paper's
    # 10.42 s with peaks of a few hundred seconds
    db_thrash_knee: int = 40
    db_thrash_slope: float = 0.015
    db_thrash_floor: float = 0.15

    # Memory model (MB) — Table 1 reports ~17.5 % memory without Jade and
    # ~20.1 % with Jade's management components deployed on every node
    node_memory_mb: float = 1024.0
    node_base_os_mb: float = 96.0
    per_job_mb: float = 1.5
    jade_mgmt_footprint_mb: float = 26.0   # per-node management components

    # Jade probe cost: CPU consumed on each managed node per 1 s sample.
    # "Jade does not induce a perceptible overhead on CPU usage" — the probe
    # is lightweight but not free.
    probe_demand_s: float = 0.0004

    def effective_db_demand(self) -> float:
        """Mix-weighted demand one query places on the whole DB tier when a
        single backend serves it."""
        return (
            (1.0 - self.write_fraction) * self.db_read_demand_s
            + self.write_fraction * self.db_write_demand_s
        )

    def app_demand_total(self) -> float:
        return self.app_demand_pre_s + self.app_demand_post_s


DEFAULT_CALIBRATION = Calibration()
