"""Closed-loop client emulator.

Reproduces RUBiS's benchmarking tool: each emulated client alternates
between an exponential *think time* and one web interaction, waiting for
the response before thinking again (closed loop).  A population controller
activates/deactivates clients to follow the configured
:class:`~repro.workload.profiles.WorkloadProfile`.

Closed-loop behaviour is essential to the reproduction: it is what couples
response time back into offered load (throughput saturates instead of the
system melting instantly), which shapes Figures 8 and 9.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.legacy.requests import WebRequest
from repro.metrics.collector import MetricsCollector
from repro.simulation.kernel import PeriodicTask, SimKernel
from repro.simulation.process import Process, sleep, wait
from repro.simulation.rng import RngStreams
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.profiles import WorkloadProfile
from repro.workload.rubis import MixNavigator, RubisModel

EntryPoint = Callable[[WebRequest], None]


class _Client:
    """One emulated browser session."""

    __slots__ = ("client_id", "active", "process")

    def __init__(self, client_id: int):
        self.client_id = client_id
        self.active = True
        self.process: Optional[Process] = None


class ClientEmulator:
    """Drives a population of emulated clients against an entry point.

    ``entry`` is any callable accepting a :class:`WebRequest` — typically
    the ``handle`` method of the front load balancer.
    """

    def __init__(
        self,
        kernel: SimKernel,
        entry: EntryPoint,
        profile: WorkloadProfile,
        collector: MetricsCollector,
        streams: RngStreams,
        calibration: Calibration = DEFAULT_CALIBRATION,
        navigator_factory: Optional[Callable[[int], object]] = None,
        adjust_period_s: float = 1.0,
        request_timeout_s: Optional[float] = None,
    ) -> None:
        self.kernel = kernel
        self.entry = entry
        self.profile = profile
        self.collector = collector
        self.streams = streams
        self.cal = calibration
        self.model = RubisModel(kernel, calibration, streams.get("rubis-demands"))
        self._navigator_factory = navigator_factory or (
            lambda cid: MixNavigator(streams.get(f"client-nav-{cid}"))
        )
        self.adjust_period_s = adjust_period_s
        #: when set, a browser gives up on a request after this many
        #: seconds (abandonment); the request is recorded as failed.  None
        #: reproduces the paper's patient emulator (Figure 8 shows waits of
        #: hundreds of seconds, so RUBiS clients clearly did not abandon).
        self.request_timeout_s = request_timeout_s
        self.abandoned = 0
        self._clients: list[_Client] = []
        self._next_client_id = 0
        self._task: Optional[PeriodicTask] = None
        self.requests_issued = 0

    # ------------------------------------------------------------------
    @property
    def active_clients(self) -> int:
        return sum(1 for c in self._clients if c.active)

    def start(self) -> None:
        """Spawn the initial population and the profile follower."""
        self._adjust()
        self._task = self.kernel.every(self.adjust_period_s, self._adjust)

    def stop(self) -> None:
        """Deactivate everything (clients finish their current request)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
        for client in self._clients:
            client.active = False

    # ------------------------------------------------------------------
    def _adjust(self) -> None:
        target = self.profile.clients_at(self.kernel.now)
        current = self.active_clients
        if target > current:
            for _ in range(target - current):
                self._spawn_client()
        elif target < current:
            # Deactivate the most recently started clients first.
            to_stop = current - target
            for client in reversed(self._clients):
                if to_stop == 0:
                    break
                if client.active:
                    client.active = False
                    to_stop -= 1
        self.collector.record_workload(self.kernel.now, self.active_clients)

    def _spawn_client(self) -> None:
        cid = self._next_client_id
        self._next_client_id += 1
        client = _Client(cid)
        self._clients.append(client)
        client.process = Process(
            self.kernel, self._session(client), name=f"client-{cid}"
        )

    def _session(self, client: _Client):
        """The client loop: think, request, wait, repeat."""
        rng = self.streams.get(f"client-think-{client.client_id}")
        navigator = self._navigator_factory(client.client_id)
        while client.active:
            think = float(rng.exponential(self.cal.think_time_mean_s))
            yield sleep(think)
            if not client.active:
                break
            if (
                self.cal.static_fraction > 0.0
                and rng.random() < self.cal.static_fraction
            ):
                request = WebRequest(
                    self.kernel,
                    "StaticDocument",
                    is_static=True,
                    static_demand=self.model._vary(self.cal.static_demand_s),
                    client_id=client.client_id,
                )
            else:
                inter = navigator.next_interaction()
                request = self.model.make_request(inter, client_id=client.client_id)
            self.requests_issued += 1
            self.entry(request)
            timeout_event = None
            if self.request_timeout_s is not None:

                def abandon(req=request):
                    self.abandoned += 1
                    req.fail(self.kernel, "client timeout")

                timeout_event = self.kernel.schedule(
                    self.request_timeout_s, abandon
                )
            try:
                yield wait(request.completion)
            except Exception:
                self.collector.record_failure(self.kernel.now)
                continue
            finally:
                if timeout_event is not None:
                    timeout_event.cancel()
            latency = request.latency
            assert latency is not None
            self.collector.record_latency(self.kernel.now, latency)
