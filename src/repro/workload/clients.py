"""Closed-loop client emulator.

Reproduces RUBiS's benchmarking tool: each emulated client alternates
between an exponential *think time* and one web interaction, waiting for
the response before thinking again (closed loop).  A population controller
activates/deactivates clients to follow the configured
:class:`~repro.workload.profiles.WorkloadProfile`.

Closed-loop behaviour is essential to the reproduction: it is what couples
response time back into offered load (throughput saturates instead of the
system melting instantly), which shapes Figures 8 and 9.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.legacy.requests import WebRequest
from repro.metrics.collector import MetricsCollector
from repro.simulation.kernel import PeriodicTask, SimKernel
from repro.simulation.process import Process
from repro.simulation.rng import RngStreams
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.cohort import ClientCohort
from repro.workload.profiles import WorkloadProfile
from repro.workload.rubis import MixNavigator, RubisModel

EntryPoint = Callable[[WebRequest], None]


class ClientEmulator:
    """Drives a population of emulated clients against an entry point.

    ``entry`` is any callable accepting a :class:`WebRequest` — typically
    the ``handle`` method of the front load balancer.
    """

    def __init__(
        self,
        kernel: SimKernel,
        entry: EntryPoint,
        profile: WorkloadProfile,
        collector: MetricsCollector,
        streams: RngStreams,
        calibration: Calibration = DEFAULT_CALIBRATION,
        navigator_factory: Optional[Callable[[int], object]] = None,
        adjust_period_s: float = 1.0,
        request_timeout_s: Optional[float] = None,
        cohort: int = 1,
    ) -> None:
        self.kernel = kernel
        self.entry = entry
        self.profile = profile
        self.collector = collector
        self.streams = streams
        self.cal = calibration
        self.model = RubisModel(kernel, calibration, streams.get("rubis-demands"))
        self._navigator_factory = navigator_factory or (
            lambda cid: MixNavigator(streams.get(f"client-nav-{cid}"))
        )
        self.adjust_period_s = adjust_period_s
        #: when set, a browser gives up on a request after this many
        #: seconds (abandonment); the request is recorded as failed.  None
        #: reproduces the paper's patient emulator (Figure 8 shows waits of
        #: hundreds of seconds, so RUBiS clients clearly did not abandon).
        self.request_timeout_s = request_timeout_s
        if cohort < 1:
            raise ValueError("cohort must be >= 1")
        #: aggregate this many identical clients into one batched event
        #: stream (see :mod:`repro.workload.cohort`); 1 = per-client
        self.cohort = cohort
        self.abandoned = 0
        self._clients: list[ClientCohort] = []
        self._next_client_id = 0
        self._task: Optional[PeriodicTask] = None
        self.requests_issued = 0

    # ------------------------------------------------------------------
    @property
    def active_clients(self) -> int:
        """Simulated browsers currently active (sum of cohort weights)."""
        return sum(c.weight for c in self._clients if c.active)

    def start(self) -> None:
        """Spawn the initial population and the profile follower."""
        self._adjust()
        self._task = self.kernel.every(self.adjust_period_s, self._adjust)

    def stop(self) -> None:
        """Deactivate everything (clients finish their current request)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
        for client in self._clients:
            client.active = False

    # ------------------------------------------------------------------
    def _adjust(self) -> None:
        target = self.profile.clients_at(self.kernel.now)
        current = self.active_clients
        if target > current:
            deficit = target - current
            while deficit > 0:
                # Full-size cohorts plus one remainder cohort, so the
                # active population tracks the profile exactly on the way
                # up regardless of the cohort size.
                weight = min(self.cohort, deficit)
                self._spawn_client(weight)
                deficit -= weight
        elif target < current:
            # Deactivate the most recently started cohorts first.  A
            # cohort deactivates whole, so the population may undershoot
            # by at most ``cohort - 1`` until the next adjustment.
            to_stop = current - target
            for client in reversed(self._clients):
                if to_stop <= 0:
                    break
                if client.active:
                    client.active = False
                    to_stop -= client.weight
        self.collector.record_workload(self.kernel.now, self.active_clients)

    def _spawn_client(self, weight: int = 1) -> None:
        cid = self._next_client_id
        self._next_client_id += 1
        client = ClientCohort(cid, weight)
        self._clients.append(client)
        client.process = Process(
            self.kernel, client.session(self), name=f"client-{cid}"
        )
