"""Aggregated client cohorts.

A :class:`ClientCohort` models ``K`` identical closed-loop clients as one
batched event stream: the cohort thinks once per cycle, issues a single
:class:`~repro.legacy.requests.WebRequest` of ``weight == K`` whose tier
demands are drawn as the *sum* of the constituents' demands (Gamma
additivity: the sum of ``K`` i.i.d. ``Gamma(shape, scale)`` draws is
``Gamma(K * shape, scale)``), and fans the completion back out
statistically — the metrics collector records ``K`` completions sharing
the cohort's latency sample.

Processor sharing sees the true concurrency: a weight-``K`` job counts as
``K`` concurrent requests for the capacity model and per-request rate
(:class:`~repro.simulation.resources.CpuJob`), so tier utilization and the
thrashing curve behave as if ``K`` individual clients were in service.

What is approximated: the ``K`` constituents move in lockstep (they think
and issue together), so short-timescale queueing variance is reduced
compared to ``K`` desynchronized clients.  Mean utilization and throughput
are preserved — the property tests in ``tests/test_cohort.py`` pin the
tolerance — and at ``K == 1`` the cohort is *event-for-event identical* to
the per-client emulation (every RNG draw has the same signature on the
same stream).

This is the engine-scaling lever for the Fig. 9 ramp at 100k–1M simulated
users: event cost per cycle is O(1) in ``K``.  Pair it with
``ExperimentConfig.hardware_scale`` (weak scaling) so the managed system
makes the same decisions as the calibrated 500-client testbed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.legacy.requests import WebRequest
from repro.simulation.process import Process, sleep, wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.clients import ClientEmulator


class ClientCohort:
    """``weight`` identical emulated browsers driven as one event stream."""

    __slots__ = ("client_id", "weight", "active", "process")

    def __init__(self, client_id: int, weight: int = 1):
        if weight < 1:
            raise ValueError("cohort weight must be >= 1")
        self.client_id = client_id
        self.weight = weight
        self.active = True
        self.process: Optional[Process] = None

    def session(self, emulator: "ClientEmulator"):
        """The batched closed loop: think, request (weight-K), wait, repeat.

        With ``weight == 1`` this consumes exactly the same RNG draws in
        the same order as the historical per-client loop.
        """
        kernel = emulator.kernel
        cal = emulator.cal
        model = emulator.model
        collector = emulator.collector
        weight = self.weight
        rng = emulator.streams.get(f"client-think-{self.client_id}")
        navigator = emulator._navigator_factory(self.client_id)
        while self.active:
            think = float(rng.exponential(cal.think_time_mean_s))
            yield sleep(think)
            if not self.active:
                break
            if (
                cal.static_fraction > 0.0
                and rng.random() < cal.static_fraction
            ):
                request = WebRequest(
                    kernel,
                    "StaticDocument",
                    is_static=True,
                    static_demand=model._vary(cal.static_demand_s, weight),
                    client_id=self.client_id,
                    weight=weight,
                )
            else:
                inter = navigator.next_interaction()
                request = model.make_request(
                    inter, client_id=self.client_id, weight=weight
                )
            emulator.requests_issued += weight
            emulator.entry(request)
            timeout_event = None
            if emulator.request_timeout_s is not None:

                def abandon(req=request):
                    emulator.abandoned += weight
                    req.fail(kernel, "client timeout")

                timeout_event = kernel.schedule(
                    emulator.request_timeout_s, abandon
                )
            try:
                yield wait(request.completion)
            except Exception:
                collector.record_failure(kernel.now, weight)
                continue
            finally:
                if timeout_event is not None:
                    timeout_event.cancel()
            latency = request.latency
            assert latency is not None
            collector.record_latency(kernel.now, latency, weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "stopped"
        return f"<ClientCohort #{self.client_id} x{self.weight} {state}>"
