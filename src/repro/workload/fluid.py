"""Mean-field fluid workload engine (million-user scale).

Above a few hundred thousand simulated browsers, even aggregated cohorts
(:mod:`repro.workload.cohort`) pay one think/request/complete event cycle
per cohort per ~7 s.  The autonomic control loops never see those events:
they observe 1 s *CPU utilization samples* smoothed over 60–90 s windows
(:mod:`repro.jade.sensors`) and the latency series in the metrics
collector.  That observation boundary is what makes a *fluid* (mean-field)
workload substitutable — replace the discrete request population with its
deterministic flow equations, drive the very same ``PsCpu`` busy-time
accounting and ``MetricsCollector`` series, and every control loop
(reactive, proactive, chaos detector, deploy canary, market engine) runs
unmodified.

Flow model
----------

The fluid state is the in-flight request level ``L`` (requests inside the
system; ``N - L`` browsers are thinking).  One implicit-Euler flow step
per coarse tick (default 1 s, the probe cadence):

    L' = L + dt * ((N - L') / Z  -  X(L'))

where the service network fixes throughput at level ``L`` by Little's law
``X * R_net(X) = L``.  ``R_net(X)`` is the mean sojourn across the
request path — PLB proxy, app tier, CJDBC route, DB tier (reads load one
backend, full-mirrored writes load all of them in parallel), plus two LAN
hops — with each processor-sharing station contributing
``(d / s_eff) / (1 - rho)`` and per-station concurrency fed back through
the node's capacity model, so the DB thrashing regime of Fig. 8 bends
``R_net`` exactly as the discrete engine's
:class:`~repro.simulation.resources.ThrashingCurve` does.  Substituting
Little's law turns the implicit step into a single scalar root-find in
``X`` (``Phi(X) = X*R_net(X)*(1 + dt/Z) + dt*X - (L + dt*N/Z)``, strictly
increasing), solved with the Illinois method warm-started from the
previous tick.  Carrying ``L`` across ticks is what reproduces the
*backlog transients* of the paper's ramp: when a tier is under-provisioned
the level grows at the capacity deficit, and after a replica is added the
queue drains at the real drain rate — latencies of tens of seconds emerge
exactly where the discrete engine shows them (an equilibrium-only solve
misses those spikes entirely; the accuracy gate in
``benchmarks/bench_fluid.py`` would catch that).  An explicit Euler step
would need millisecond ticks (service times) — the implicit step is
unconditionally stable at the 1 s tick.

The per-replica flow state is held in plain scalar lists rather than
numpy arrays: tiers are a handful of replicas, and at that size the
interpreter loop is ~10x faster per tick than numpy's per-call dispatch
overhead (measured; the tick budget is what bounds the 1M-user wall
clock, at ~3600 solves per ramp).

Injection: each tick, each live replica receives one weight-``w`` CPU job
sized so its busy time over the tick equals ``rho * dt`` (``w`` is the
solved per-node concurrency, so the node's own capacity model and the
``per_job_mb`` memory accounting see the true load).  The utilization
samplers measure busy-time deltas over whole ticks, so within-tick
placement is invisible to the probes.  Completions flow into
``MetricsCollector.record_latency`` at rate ``X`` with an integer-carry
accumulator (no request is lost to rounding, even across mode handoffs).

The fluid engine consumes **zero RNG draws** — the seeded ``market``,
``chaos`` and ``deploy`` streams see exactly the sequence they see in a
discrete run (asserted in ``tests/test_fluid.py``).

What is approximated: short-timescale stochastic queueing variance
(latency percentiles compress toward the mean), per-node *memory* samples
(a fluid job often completes before the 1 s node sampler looks), and
partitioned replicas are treated as removed instead of flooding failures.
``benchmarks/bench_fluid.py`` gates the part that matters: replica-count
trajectories identical to discrete on the paper's ramp, latency and
utilization within a stated tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.cluster.network import Lan
from repro.cluster.node import Node, NodeDown
from repro.metrics.collector import MetricsCollector
from repro.simulation.kernel import SimKernel
from repro.simulation.rng import RngStreams
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.clients import ClientEmulator, EntryPoint
from repro.workload.profiles import WorkloadProfile

#: utilization clamp while searching for the operating point (an
#: overloaded station contributes a huge-but-finite sojourn, steering the
#: root finder back below capacity)
_RHO_MAX = 1.0 - 1e-9
#: damped self-consistency iterations for the capacity (thrashing) model
_CAP_ITERS = 4
#: root-finder stop: relative bracket width on throughput
_X_TOL = 1e-10
_MAX_ROOT_ITERS = 100
#: cap on the injected job weight (memory-model guard; the weak-scaled
#: operating point keeps true per-node concurrency far below this)
_MAX_WEIGHT = 100_000
#: LAN hops on the request path: PLB -> Tomcat, CJDBC -> backend
_LAN_HOPS = 2


@dataclass(frozen=True)
class FluidState:
    """One tick's solved operating point."""

    population: int
    in_flight: float
    throughput_rps: float
    latency_s: float
    app_util: float
    db_util: float
    app_nodes: int
    db_nodes: int


class _TierFlow:
    """Scratch flow state for one tier: speeds, capacity feedback, load."""

    __slots__ = ("nodes", "raw", "caps", "se", "rho", "conc")

    def __init__(self, nodes: Sequence[Node]) -> None:
        self.nodes = nodes
        self.raw = [n.cpu.speed * n.cpu.degradation for n in nodes]
        self.caps = [n.cpu.capacity_model for n in nodes]
        self.se = list(self.raw)
        self.rho: list[float] = [0.0] * len(nodes)
        self.conc: list[float] = [0.0] * len(nodes)

    def solve(self, X: float, d_even: float, d_per: float, conc_cap: float) -> None:
        """Damped fixed point of utilization vs the capacity model.

        ``d_even`` is demand balanced across replicas proportionally to
        effective speed (reads / servlet work); ``d_per`` is demand every
        replica pays per request (full-mirrored writes).  ``conc_cap``
        bounds the per-node concurrency fed to the capacity model (a
        station can never hold more jobs than are in flight system-wide).
        """
        raw, caps = self.raw, self.caps
        se = list(raw)
        rho = self.rho
        conc = self.conc
        for _ in range(_CAP_ITERS + 1):
            total = 0.0
            for s in se:
                total += s
            even = X * d_even / total
            for i, s in enumerate(se):
                r = even + X * d_per / s if d_per else even
                if r > _RHO_MAX:
                    r = _RHO_MAX
                rho[i] = r
                c = r / (1.0 - r)
                conc[i] = c if c < conc_cap else conc_cap
            for i, (s, cap) in enumerate(zip(raw, caps)):
                se[i] = 0.5 * (se[i] + s * cap(conc[i]))
        self.se = se

    def sojourn_even(self, d_even: float) -> float:
        """Mean sojourn of speed-balanced demand across the tier.

        Service runs on one replica at that replica's speed; the queueing
        term uses the *pooled* tier capacity, because the balancers route
        least-pending-first (JSQ), which achieves near-full resource
        pooling in heavy traffic.  At one replica this is exactly the
        M/G/1-PS sojourn ``(d/s) / (1 - rho)``.
        """
        total = 0.0
        for s in self.se:
            total += s
        service = 0.0
        queue = 0.0
        for s, r in zip(self.se, self.rho):
            share = s / total
            service += share * (d_even / s)
            queue += share * (r / (1.0 - r))
        return service + (d_even / total) * queue

    def sojourn_barrier(self, d_per: float) -> float:
        """Sojourn of mirrored demand: complete when the slowest replica
        has applied it (RAIDb-1 write barrier)."""
        worst = 0.0
        for s, r in zip(self.se, self.rho):
            t = (d_per / s) / (1.0 - r)
            if t > worst:
                worst = t
        return worst

    def mean_util(self) -> float:
        return sum(self.rho) / len(self.rho) if self.rho else 0.0


class FluidEngine:
    """Solves and injects the mean-field operating point once per tick.

    ``app_nodes``/``db_nodes`` are callables returning the tier's live
    replica nodes (``TierManager.active_nodes`` — reconfigurations are
    picked up on the next tick).  ``balancers`` is a sequence of
    ``(node, per_request_demand_s)`` for the PLB and CJDBC stations.
    """

    def __init__(
        self,
        kernel: SimKernel,
        collector: MetricsCollector,
        calibration: Calibration = DEFAULT_CALIBRATION,
        app_nodes: Callable[[], Sequence[Node]] = tuple,
        db_nodes: Callable[[], Sequence[Node]] = tuple,
        balancers: Sequence[tuple[Node, float]] = (),
        lan: Optional[Lan] = None,
    ) -> None:
        if calibration.static_fraction > 0.0:
            raise ValueError(
                "fluid mode models the servlets-only mix; "
                "static_fraction > 0 is not supported"
            )
        self.kernel = kernel
        self.collector = collector
        self.cal = calibration
        self.app_nodes = app_nodes
        self.db_nodes = db_nodes
        self.balancers = tuple(balancers)
        self.lan = lan
        #: in-flight request level (the fluid ODE state)
        self.level = 0.0
        #: fractional-completion accumulator (persists across handoffs so
        #: no demand is lost when the hybrid dispatcher switches modes)
        self._carry = 0.0
        #: previous tick's solved throughput (warm-starts the bracket)
        self._last_x: Optional[float] = None
        self.ticks = 0
        self.completions = 0
        self.last_state: Optional[FluidState] = None

    # ------------------------------------------------------------------
    def _network_delay(self) -> float:
        """Per-request LAN delay (same formula as ``Lan.message_delay``
        for a 1 KB message, without mutating the traffic counters)."""
        if self.lan is None:
            return 0.0
        per_hop = (
            self.lan.latency_s
            + self.lan.extra_latency_s
            + 1.0 / (self.lan.bandwidth_mbps * 128.0)
        )
        return _LAN_HOPS * per_hop

    @staticmethod
    def _live(nodes: Sequence[Node]) -> list[Node]:
        return [
            n
            for n in nodes
            if n.up and not n.isolated and n.cpu.speed * n.cpu.degradation > 0.0
        ]

    def _response(
        self, X: float, app: _TierFlow, db: _TierFlow, conc_cap: float
    ) -> float:
        """Mean service-network sojourn at throughput ``X`` (no think
        time); leaves the tier flow states at that operating point."""
        cal = self.cal
        R = self._network_delay()
        for node, dreq in self.balancers:
            s = node.cpu.speed * node.cpu.degradation
            if not node.up or node.isolated or s <= 0.0:
                continue
            rho = min(X * dreq / s, _RHO_MAX)
            R += (dreq / s) / (1.0 - rho)
        d_app = cal.app_demand_total()
        app.solve(X, d_app, 0.0, conc_cap)
        R += app.sojourn_even(d_app)
        wf = cal.write_fraction
        db.solve(
            X, (1.0 - wf) * cal.db_read_demand_s, wf * cal.db_write_demand_s,
            conc_cap,
        )
        R += (1.0 - wf) * db.sojourn_even(cal.db_read_demand_s)
        R += wf * db.sojourn_barrier(cal.db_write_demand_s)
        return R

    def _empty_state(self, population: int, app_n: int, db_n: int) -> FluidState:
        return FluidState(
            population=max(population, 0),
            in_flight=self.level,
            throughput_rps=0.0,
            latency_s=0.0,
            app_util=0.0,
            db_util=0.0,
            app_nodes=app_n,
            db_nodes=db_n,
        )

    def step(
        self, population: int, dt: float
    ) -> tuple[FluidState, Optional[_TierFlow], Optional[_TierFlow]]:
        """One implicit-Euler flow step: advance the in-flight level and
        solve the throughput/latency operating point.

        ``Phi(X) = X*R_net(X)*(1 + dt/Z) + dt*X - (L + dt*N/Z)`` is
        strictly increasing in ``X``; its root gives the post-step level
        ``L' = X*R_net(X)`` via Little's law.
        """
        app_live = self._live(self.app_nodes())
        db_live = self._live(self.db_nodes())
        n = float(max(population, 0))
        if not app_live or not db_live:
            # Nothing can serve: the level only grows with new arrivals
            # (bounded by the population); nothing completes.
            self.level = min(self.level + dt * n / self.cal.think_time_mean_s, n)
            self._last_x = None
            return self._empty_state(population, len(app_live), len(db_live)), None, None
        if n <= 0.0 and self.level <= 0.0:
            self._last_x = None
            return self._empty_state(population, len(app_live), len(db_live)), None, None
        app = _TierFlow(app_live)
        db = _TierFlow(db_live)
        Z = self.cal.think_time_mean_s
        target = self.level + dt * n / Z
        gain = 1.0 + dt / Z
        # A station can never hold more than everything in flight.
        conc_cap = max(target, 1.0)

        def phi(x: float) -> float:
            r = self._response(x, app, db, conc_cap)
            return x * r * gain + dt * x - target

        lo, f_lo = 0.0, -target
        hi = target / dt  # Phi(target/dt) >= R*gain*target/dt > 0
        if self._last_x is not None and 0.0 < self._last_x < hi:
            guess_hi = min(self._last_x * 1.25, hi)
            f = phi(guess_hi)
            if f >= 0.0:
                hi, f_hi = guess_hi, f
                guess_lo = self._last_x * 0.8
                f = phi(guess_lo)
                if f <= 0.0:
                    lo, f_lo = guess_lo, f
            else:
                lo, f_lo = guess_hi, f
                f_hi = phi(hi)
        else:
            f_hi = phi(hi)
        # Illinois method: superlinear on smooth monotone Phi, never
        # leaves the bracket.
        x = hi
        for _ in range(_MAX_ROOT_ITERS):
            if hi - lo <= _X_TOL * max(hi, 1.0):
                break
            x = hi - f_hi * (hi - lo) / (f_hi - f_lo)
            if not (lo < x < hi):
                x = 0.5 * (lo + hi)
            f = phi(x)
            if f < 0.0:
                f_hi *= 0.5
                lo, f_lo = x, f
            else:
                f_lo *= 0.5
                hi, f_hi = x, f
        x = 0.5 * (lo + hi)
        self._response(x, app, db, conc_cap)  # leave tiers at the root
        level = max((target - dt * x) / gain, 0.0)
        latency = level / x if x > 0.0 else 0.0
        self.level = level
        self._last_x = x
        state = FluidState(
            population=population,
            in_flight=level,
            throughput_rps=x,
            latency_s=latency,
            app_util=app.mean_util(),
            db_util=db.mean_util(),
            app_nodes=len(app_live),
            db_nodes=len(db_live),
        )
        return state, app, db

    def seed_equilibrium(self, population: int) -> None:
        """Initialize the in-flight level at the closed-loop equilibrium
        (used when the hybrid dispatcher hands a running population over
        from discrete mode, so the flow starts from the state the cohorts
        were actually in rather than from an empty system)."""
        self.level = 0.0
        self._last_x = None
        if population <= 0:
            return
        # A few relaxation steps converge the level to equilibrium (the
        # implicit step is a contraction toward it); no CPU or metrics
        # are touched.
        for _ in range(8):
            state, _, _ = self.step(population, 16.0)
            if state.throughput_rps <= 0.0:
                return

    # ------------------------------------------------------------------
    def _inject_node(self, node: Node, util: float, conc: float, dt: float) -> None:
        """One CPU job whose busy time over the tick equals ``util*dt``."""
        u = min(float(util), 1.0)
        if u <= 0.0:
            return
        weight = max(1, min(int(round(conc)), _MAX_WEIGHT))
        espeed = node.cpu.speed * node.cpu.degradation
        demand = u * dt * espeed * node.cpu.capacity_model(weight)
        if demand <= 0.0:
            return
        try:
            node.run_job(demand, tag="fluid", weight=weight)
        except NodeDown:
            return

    def tick(self, population: int, dt: float) -> FluidState:
        """Advance the flow by one tick: solve, inject CPU, record metrics."""
        state, app, db = self.step(population, dt)
        for tier in (app, db):
            if tier is None:
                continue
            for node, r, c in zip(tier.nodes, tier.rho, tier.conc):
                self._inject_node(node, r, c, dt)
        X = state.throughput_rps
        if X > 0.0:
            for node, dreq in self.balancers:
                s = node.cpu.speed * node.cpu.degradation
                if not node.up or node.isolated or s <= 0.0:
                    continue
                self._inject_node(node, X * dreq / s, 1.0, dt)
        self._carry += X * dt
        whole = int(self._carry)
        if whole > 0:
            self._carry -= whole
            self.collector.record_latency(self.kernel.now, state.latency_s, whole)
            self.completions += whole
        self.ticks += 1
        self.last_state = state
        return state


class HybridWorkload(ClientEmulator):
    """Threshold dispatcher between discrete cohorts and the fluid flow.

    Below ``threshold`` simulated browsers the inherited cohort emulator
    runs untouched (every RNG draw identical to a plain discrete run).
    At or above it, cohorts are deactivated — in-flight requests drain
    and record normally; thinking cohorts stop silently — and the fluid
    engine drives the same collector and CPUs, seeded at the closed-loop
    equilibrium level.  ``threshold <= 0`` means always-fluid.  The
    fractional-completion carry persists across handoffs, so completions
    are conserved through any number of switches.
    """

    def __init__(
        self,
        kernel: SimKernel,
        entry: EntryPoint,
        profile: WorkloadProfile,
        collector: MetricsCollector,
        streams: RngStreams,
        engine: FluidEngine,
        calibration: Calibration = DEFAULT_CALIBRATION,
        threshold: int = 0,
        tick_s: float = 1.0,
        request_timeout_s: Optional[float] = None,
        cohort: int = 1,
    ) -> None:
        if tick_s <= 0.0:
            raise ValueError("fluid tick must be positive")
        super().__init__(
            kernel,
            entry,
            profile,
            collector,
            streams,
            calibration=calibration,
            adjust_period_s=tick_s,
            request_timeout_s=request_timeout_s,
            cohort=cohort,
        )
        self.engine = engine
        self.threshold = int(threshold)
        self.fluid_active = False
        self.handoffs_to_fluid = 0
        self.handoffs_to_discrete = 0
        self.peak_fluid_population = 0

    # ------------------------------------------------------------------
    @property
    def active_clients(self) -> int:
        """Population the proactive planner (and workload series) sees."""
        if self.fluid_active and self.engine.last_state is not None:
            return self.engine.last_state.population
        return super().active_clients

    def _adjust(self) -> None:
        now = self.kernel.now
        target = self.profile.clients_at(now)
        want_fluid = self.threshold <= 0 or target >= self.threshold
        if want_fluid:
            if not self.fluid_active:
                self.fluid_active = True
                if self.handoffs_to_fluid > 0 or self.active_clients > 0:
                    # Mid-run handoff: start the flow from the operating
                    # point the cohorts were at, not from an empty system.
                    self.engine.seed_equilibrium(target)
                self.handoffs_to_fluid += 1
                for client in self._clients:
                    client.active = False
            before = self.engine.completions
            self.engine.tick(target, self.adjust_period_s)
            self.requests_issued += self.engine.completions - before
            if target > self.peak_fluid_population:
                self.peak_fluid_population = target
            self.collector.record_workload(now, target)
        else:
            if self.fluid_active:
                self.fluid_active = False
                self.handoffs_to_discrete += 1
                # The residual fluid level drains implicitly: fresh
                # cohorts re-establish the closed-loop population at once.
                # Drop drained cohorts; fresh ones get fresh client ids
                # (and therefore fresh deterministic RNG streams).
                self.engine.level = 0.0
                self.engine._last_x = None
                self._clients = [c for c in self._clients if c.active]
            super()._adjust()

    def fluid_stats(self) -> dict:
        """Picklable summary for :class:`repro.runner.results.FluidStats`."""
        return {
            "ticks": self.engine.ticks,
            "completions": self.engine.completions,
            "handoffs_to_fluid": self.handoffs_to_fluid,
            "handoffs_to_discrete": self.handoffs_to_discrete,
            "peak_fluid_population": self.peak_fluid_population,
            "threshold": self.threshold,
        }
