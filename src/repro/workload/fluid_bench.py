"""The ``"fluid"`` section of BENCH_engine.json (shared logic).

Three headline claims, asserted by the CI fluid-smoke job:

* **accuracy gate** — on the paper's full-scale Fig. 9 ramp (seed 1,
  scale 1.0) the fluid workload engine and the discrete cohort emulator
  produce *identical* replica-count trajectories (same grow/shrink
  sequence in both tiers, change times within
  :data:`TOLERANCES` ``["change_time_skew_s"]``), latency trajectories
  within the stated relative tolerance, tier CPU within an absolute
  tolerance, and total completions within 2 % — with every control loop
  (reactive sizing, proactive planner, chaos detector, deploy canary,
  market engine) running unmodified;
* **speedup** — the fluid run of the same ramp is several times faster
  than the discrete run, and a cache-warm re-run resolves in
  milliseconds with a byte-identical report;
* **million users** — a 1M-peak-user Fig. 9 ramp (cohort 2000, weak
  hardware scaling) completes within
  :data:`MILLION_BUDGET_S` seconds of wall clock.

Lives inside the package (not ``benchmarks/``) so ``repro bench`` can
import it from an installed tree; ``benchmarks/bench_fluid.py`` is the
CLI/pytest wrapper.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

#: accuracy-gate tolerances (fluid vs discrete, Fig. 9 ramp at scale 1.0).
#: Measured slack on the reference machine: change-time skew <= 51 s,
#: latency rel diff max 0.25 / mean 0.05, tier CPU mean abs diff < 0.02,
#: completions rel diff < 0.005.
TOLERANCES = {
    # replica sequences must match *exactly*; paired change times may
    # shift by at most one sensing window
    "change_time_skew_s": 60.0,
    # 120 s latency-trajectory buckets over the profile horizon
    "latency_rel_max": 0.30,
    "latency_rel_mean": 0.10,
    # smoothed tier-CPU trajectories, interpolated onto a common grid
    "tier_cpu_mean_abs": 0.03,
    # total completed requests
    "completions_rel": 0.02,
}

#: wall-clock budget (s) for the 1M-user ramp on the reference machine
#: (measured ~1 s; CI smoke passes a laxer budget for slow runners)
MILLION_BUDGET_S = 30.0

#: latency-trajectory bucket width (s) at scale 1.0
_BUCKET_S = 120.0


def _fig9_config(seed: int, scale: float, fluid: bool):
    from repro.jade.system import ExperimentConfig
    from repro.workload.profiles import RampProfile

    return ExperimentConfig(
        profile=RampProfile(
            warmup_s=300.0 * scale,
            step_period_s=60.0 * scale,
            cooldown_s=300.0 * scale,
        ),
        seed=seed,
        managed=True,
        fluid=fluid,
    )


def million_config(seed: int = 1, peak: int = 1_000_000, cohort: int = 2000):
    """The 1M-user Fig. 9 ramp: every browser replaced by a cohort of
    2000, hardware weak-scaled to match, fluid engine always on."""
    from repro.jade.system import ExperimentConfig
    from repro.workload.profiles import RampProfile

    return ExperimentConfig(
        profile=RampProfile(
            base=80 * cohort,
            peak=peak,
            step_clients=21 * cohort,
            warmup_s=300.0,
            step_period_s=60.0,
            cooldown_s=300.0,
        ),
        seed=seed,
        managed=True,
        cohort=cohort,
        hardware_scale=float(cohort),
        fluid=True,
    )


def _replica_sequence(run, tier: str) -> list[int]:
    return [int(v) for _, v in run.collector.replica_changes(tier)]


def _change_time_skew(discrete, fluid, tier: str) -> float:
    d = [t for t, _ in discrete.collector.replica_changes(tier)]
    f = [t for t, _ in fluid.collector.replica_changes(tier)]
    if len(d) != len(f):
        return float("inf")
    if not d:
        return 0.0
    return float(max(abs(a - b) for a, b in zip(d, f)))


def _latency_trajectory_diff(discrete, fluid, horizon: float) -> dict:
    """Relative per-bucket differences of the mean-latency trajectories."""
    d = discrete.collector.latency_buckets(_BUCKET_S, t_end=horizon)
    f = fluid.collector.latency_buckets(_BUCKET_S, t_end=horizon)
    # bucket grids share t_end, so align on common bucket times; the
    # overflow bucket past the horizon holds only the post-profile drain
    # tail (a handful of samples on either side) and is excluded
    common = sorted(
        t
        for t in set(np.round(d.times, 6)) & set(np.round(f.times, 6))
        if t <= horizon
    )
    dv = {round(t, 6): v for t, v in zip(d.times, d.values)}
    fv = {round(t, 6): v for t, v in zip(f.times, f.values)}
    rel = [
        abs(fv[t] - dv[t]) / dv[t]
        for t in common
        if dv[t] > 0.0
    ]
    if not rel:
        return {"max": float("inf"), "mean": float("inf"), "buckets": 0}
    return {
        "max": float(max(rel)),
        "mean": float(np.mean(rel)),
        "buckets": len(rel),
    }


def _tier_cpu_diff(discrete, fluid, tier: str) -> float:
    """Mean absolute difference of the smoothed tier-CPU trajectories,
    fluid interpolated onto the discrete sample grid."""
    d = discrete.collector.tier_cpu.get(tier)
    f = fluid.collector.tier_cpu.get(tier)
    if d is None or f is None or len(d.times) == 0 or len(f.times) == 0:
        return float("inf")
    interp = np.interp(d.times, f.times, f.values)
    return float(np.mean(np.abs(interp - d.values)))


def run_accuracy_gate(
    discrete, fluid, tolerances: Optional[dict] = None
) -> dict:
    """Compare a discrete and a fluid :class:`CompletedRun` of the same
    ramp; returns the gate block with per-check pass/fail."""
    tol = dict(TOLERANCES if tolerances is None else tolerances)
    horizon = discrete.config.profile.duration_s

    seqs = {
        tier: {
            "discrete": _replica_sequence(discrete, tier),
            "fluid": _replica_sequence(fluid, tier),
        }
        for tier in ("application", "database")
    }
    sequences_identical = all(
        s["discrete"] == s["fluid"] for s in seqs.values()
    )
    skew = max(
        _change_time_skew(discrete, fluid, tier)
        for tier in ("application", "database")
    )
    latency = _latency_trajectory_diff(discrete, fluid, horizon)
    cpu = {
        tier: _tier_cpu_diff(discrete, fluid, tier)
        for tier in ("application", "database")
    }
    d_completed = discrete.collector.completed_requests
    completions_rel = (
        abs(fluid.collector.completed_requests - d_completed) / d_completed
        if d_completed
        else float("inf")
    )

    checks = {
        "replica_sequences_identical": sequences_identical,
        "change_time_skew_s": skew <= tol["change_time_skew_s"],
        "latency_rel_max": latency["max"] <= tol["latency_rel_max"],
        "latency_rel_mean": latency["mean"] <= tol["latency_rel_mean"],
        "tier_cpu_mean_abs": max(cpu.values()) <= tol["tier_cpu_mean_abs"],
        "completions_rel": completions_rel <= tol["completions_rel"],
    }
    return {
        "replica_sequences": seqs,
        "replica_sequences_identical": sequences_identical,
        "change_time_skew_s": skew,
        "latency_rel_diff": latency,
        "tier_cpu_mean_abs_diff": cpu,
        "completions": {
            "discrete": int(d_completed),
            "fluid": int(fluid.collector.completed_requests),
            "rel_diff": completions_rel,
        },
        "tolerances": tol,
        "checks": checks,
        "passed": all(checks.values()),
    }


def run_fluid_section(
    seed: int = 1,
    scale: float = 1.0,
    parallel: bool = True,
    use_cache: bool = False,
    million_budget_s: float = MILLION_BUDGET_S,
) -> dict:
    """The ``"fluid"`` section of BENCH_engine.json."""
    from repro.runner import ExperimentRunner, ResultCache

    runner = ExperimentRunner(
        cache=ResultCache() if use_cache else None, parallel=parallel
    )

    # -- accuracy gate: the discrete/fluid Fig. 9 pair, one batch --------
    configs = {
        "discrete": _fig9_config(seed, scale, fluid=False),
        "fluid": _fig9_config(seed, scale, fluid=True),
    }
    runs = runner.run_many(configs)
    gate = run_accuracy_gate(runs["discrete"], runs["fluid"])

    # -- speedup: compute walls, plus a cache-warm fluid re-run ----------
    discrete_wall = runs["discrete"].wall_time_s
    fluid_wall = runs["fluid"].wall_time_s
    warm_elapsed = None
    if runner.cache is not None:
        t0 = time.perf_counter()
        runner.run_many({"fluid": configs["fluid"]})
        warm_elapsed = time.perf_counter() - t0

    # -- the million-user ramp -------------------------------------------
    m_config = million_config(seed=seed)
    t0 = time.perf_counter()
    m_run = runner.run_many({"million": m_config})["million"]
    m_elapsed = time.perf_counter() - t0
    m_users = m_config.profile.peak_clients
    m_wall = m_run.wall_time_s
    million = {
        "users": int(m_users),
        "wall_s": m_wall,
        "elapsed_s": m_elapsed,
        "budget_s": million_budget_s,
        "users_per_s": m_users / m_wall if m_wall > 0 else float("inf"),
        "completed": int(m_run.collector.completed_requests),
        "events": int(m_run.events_processed),
        "app_replicas_max": int(m_run.summary()["app_replicas_max"]),
        "db_replicas_max": int(m_run.summary()["db_replicas_max"]),
    }

    section = {
        "seed": seed,
        "scale": scale,
        "accuracy": gate,
        "speedup": {
            "discrete_wall_s": discrete_wall,
            "fluid_wall_s": fluid_wall,
            "speedup": discrete_wall / fluid_wall if fluid_wall > 0 else float("inf"),
            "warm_elapsed_s": warm_elapsed,
        },
        "million": million,
    }
    return section


def render_section(section: dict) -> str:
    g = section["accuracy"]
    s = section["speedup"]
    m = section["million"]
    app = g["replica_sequences"]["application"]["fluid"]
    db = g["replica_sequences"]["database"]["fluid"]
    lines = [
        f"Fluid workload engine: Fig. 9 ramp, seed {section['seed']}, "
        f"scale {section['scale']:g}",
        "",
        "accuracy gate (fluid vs discrete):",
        f"  replica sequences   : app {app}, db {db} "
        f"{'identical' if g['replica_sequences_identical'] else 'DIVERGED'}",
        f"  change-time skew    : {g['change_time_skew_s']:.1f} s "
        f"(tol {g['tolerances']['change_time_skew_s']:.0f} s)",
        f"  latency trajectory  : max rel {g['latency_rel_diff']['max']:.3f} "
        f"(tol {g['tolerances']['latency_rel_max']:.2f}), "
        f"mean rel {g['latency_rel_diff']['mean']:.3f} "
        f"(tol {g['tolerances']['latency_rel_mean']:.2f})",
        f"  tier CPU trajectory : mean abs diff app "
        f"{g['tier_cpu_mean_abs_diff']['application']:.4f}, db "
        f"{g['tier_cpu_mean_abs_diff']['database']:.4f} "
        f"(tol {g['tolerances']['tier_cpu_mean_abs']:.2f})",
        f"  completions         : {g['completions']['fluid']:,} vs "
        f"{g['completions']['discrete']:,} "
        f"(rel {g['completions']['rel_diff']:.4f}, "
        f"tol {g['tolerances']['completions_rel']:.2f})",
        f"  gate                : {'PASS' if g['passed'] else 'FAIL'}",
        "",
        f"speedup: discrete {s['discrete_wall_s']:.2f} s -> fluid "
        f"{s['fluid_wall_s']:.2f} s ({s['speedup']:.1f}x)"
        + (
            f", warm cache {s['warm_elapsed_s'] * 1e3:.0f} ms"
            if s["warm_elapsed_s"] is not None
            else ""
        ),
        f"million users: {m['users']:,} peak in {m['wall_s']:.2f} s wall "
        f"({m['users_per_s']:,.0f} users/s, {m['completed']:,} requests, "
        f"{m['events']:,} events; budget {m['budget_s']:.0f} s)",
    ]
    return "\n".join(lines)


def check_section(section: dict) -> None:
    """The load-bearing assertions shared by pytest, --smoke and CI."""
    g = section["accuracy"]
    assert g["replica_sequences_identical"], (
        f"replica trajectories diverged: {g['replica_sequences']}"
    )
    for name, passed in g["checks"].items():
        assert passed, f"accuracy gate check failed: {name} ({g})"
    assert g["passed"]
    m = section["million"]
    assert m["wall_s"] <= m["budget_s"], (
        f"1M-user ramp took {m['wall_s']:.1f} s "
        f"(budget {m['budget_s']:.0f} s)"
    )
    assert m["app_replicas_max"] >= 2 and m["db_replicas_max"] >= 2, (
        "managers did not scale out under the 1M ramp"
    )
    s = section["speedup"]
    assert s["speedup"] > 1.0, (
        f"fluid slower than discrete ({s['speedup']:.2f}x)"
    )
