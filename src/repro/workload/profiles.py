"""Workload profiles: the number of emulated clients as a function of time.

The paper's scenario (§5.2): "(i) at the beginning of the experiment, the
managed system is submitted to a medium workload: 80 emulated clients; then
(ii) the load increases progressively up to 500 emulated clients: 21 new
emulated clients every minute; finally (iii) the load decreases
symmetrically down to the initial load (80 clients)."
"""

from __future__ import annotations

from typing import Sequence


class WorkloadProfile:
    """Base class: integer client population at any simulated time."""

    def clients_at(self, t: float) -> int:
        raise NotImplementedError

    @property
    def duration_s(self) -> float:
        """Total scenario length."""
        raise NotImplementedError

    def peak(self) -> int:
        """Maximum population over the scenario (default: scan)."""
        return max(self.clients_at(t) for t in _scan_times(self.duration_s))


def _scan_times(duration: float, step: float = 10.0):
    t = 0.0
    while t <= duration:
        yield t
        t += step


class ConstantProfile(WorkloadProfile):
    """A flat population (Table 1's medium-workload run)."""

    def __init__(self, clients: int, duration_s: float) -> None:
        if clients < 0 or duration_s <= 0:
            raise ValueError("bad profile parameters")
        self.clients = clients
        self._duration = duration_s

    def clients_at(self, t: float) -> int:
        return self.clients if 0.0 <= t <= self._duration else 0

    @property
    def duration_s(self) -> float:
        return self._duration

    def peak(self) -> int:
        return self.clients


class RampProfile(WorkloadProfile):
    """The paper's trapezoid: warmup at base, staircase up, staircase down,
    cooldown at base."""

    def __init__(
        self,
        base: int = 80,
        peak: int = 500,
        step_clients: int = 21,
        step_period_s: float = 60.0,
        warmup_s: float = 300.0,
        hold_s: float = 0.0,
        cooldown_s: float = 300.0,
    ) -> None:
        if peak < base or base < 0:
            raise ValueError("need peak >= base >= 0")
        if step_clients <= 0 or step_period_s <= 0:
            raise ValueError("ramp step must be positive")
        self.base = base
        self.peak_clients = peak
        self.step_clients = step_clients
        self.step_period_s = step_period_s
        self.warmup_s = warmup_s
        self.hold_s = hold_s
        self.cooldown_s = cooldown_s
        import math

        self.steps = math.ceil((peak - base) / step_clients)
        self.ramp_s = self.steps * step_period_s

    def clients_at(self, t: float) -> int:
        if t < 0.0:
            return 0
        if t < self.warmup_s:
            return self.base
        t -= self.warmup_s
        if t < self.ramp_s:
            k = int(t // self.step_period_s) + 1
            return min(self.peak_clients, self.base + k * self.step_clients)
        t -= self.ramp_s
        if t < self.hold_s:
            return self.peak_clients
        t -= self.hold_s
        if t < self.ramp_s:
            # Mirror of the ascent: clients_at(mid + dt) == clients_at(mid - dt)
            # ("the load decreases symmetrically" — §5.2).
            k = int((self.ramp_s - t) // self.step_period_s) + 1
            return min(self.peak_clients, self.base + k * self.step_clients)
        t -= self.ramp_s
        if t <= self.cooldown_s:
            return self.base
        return self.base  # profile tail stays at base

    @property
    def duration_s(self) -> float:
        return self.warmup_s + 2 * self.ramp_s + self.hold_s + self.cooldown_s

    def peak(self) -> int:
        return self.peak_clients


class DiurnalProfile(WorkloadProfile):
    """A smooth day/night population cycle, phase-shiftable per region.

    ``clients_at`` follows a raised sinusoid between ``base`` (deepest
    night) and ``peak`` (mid-afternoon): the curve crosses its minimum
    at ``t == phase_s`` and its maximum half a period later.  The
    federation's follow-the-sun scenario instantiates one per region
    with ``phase_s = i * period_s / n_regions``, so daylight — and load
    — walks around the regions exactly as the global LB must chase it.
    """

    def __init__(
        self,
        base: int = 80,
        peak: int = 500,
        period_s: float = 3600.0,
        phase_s: float = 0.0,
        duration_s: float = 3600.0,
    ) -> None:
        if peak < base or base < 0:
            raise ValueError("need peak >= base >= 0")
        if period_s <= 0 or duration_s <= 0:
            raise ValueError("need period_s > 0 and duration_s > 0")
        self.base = base
        self.peak_clients = peak
        self.period_s = period_s
        self.phase_s = phase_s
        self._duration = duration_s

    def clients_at(self, t: float) -> int:
        if t < 0.0 or t > self._duration:
            return 0
        import math

        # 0 at t == phase_s, 1 half a period later
        cycle = 0.5 * (
            1.0 - math.cos(2.0 * math.pi * (t - self.phase_s) / self.period_s)
        )
        return self.base + int(round((self.peak_clients - self.base) * cycle))

    @property
    def duration_s(self) -> float:
        return self._duration

    def peak(self) -> int:
        return self.peak_clients


class PiecewiseProfile(WorkloadProfile):
    """Arbitrary step profile given as (start_time, clients) breakpoints."""

    def __init__(self, breakpoints: Sequence[tuple[float, int]], duration_s: float):
        if not breakpoints:
            raise ValueError("need at least one breakpoint")
        pts = sorted(breakpoints)
        if pts[0][0] > 0.0:
            pts.insert(0, (0.0, 0))
        self._pts = pts
        self._duration = duration_s

    def clients_at(self, t: float) -> int:
        if t < 0.0 or t > self._duration:
            return 0
        current = self._pts[0][1]
        for start, clients in self._pts:
            if start <= t:
                current = clients
            else:
                break
        return current

    @property
    def duration_s(self) -> float:
        return self._duration
