"""The 26 RUBiS web interactions and client navigation models.

The interaction set matches RUBiS 1.4's servlet edition; the mix weights
approximate the *bidding mix* (15 % read-write interactions).  Each
interaction carries relative weights for the app and database tiers; the
mix-weighted averages equal 1.0 so the calibrated mean demands
(:mod:`repro.workload.calibration`) are preserved exactly under the
stationary mix (tests assert this).

Two navigators are provided:

* :class:`MixNavigator` — i.i.d. draws from the stationary mix (the default
  for the quantitative experiments: statistically equivalent load with
  exact calibration);
* :class:`MarkovNavigator` — a browse/bid session graph (Home → Browse →
  ViewItem → PutBid → ...) whose stationary distribution approximates the
  mix; used by the session-realism tests and available to experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.legacy.requests import WebRequest
from repro.simulation.kernel import SimKernel
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION


@dataclass(frozen=True)
class Interaction:
    """One RUBiS web interaction."""

    name: str
    mix_weight: float      # stationary probability weight (bidding mix)
    app_factor: float      # relative servlet CPU vs the calibrated mean
    db_factor: float       # relative DB CPU vs the calibrated mean
    is_write: bool = False


# name, mix weight, app factor, db factor, write?
# Weights follow the shape of the RUBiS bidding mix: browsing and item
# viewing dominate; read-write interactions total 15.0 % of requests.
_RAW = [
    ("Home",                       5.5, 0.40, 0.25, False),
    ("Register",                   1.2, 0.50, 0.30, False),
    ("RegisterUser",               1.1, 1.00, 1.00, True),
    ("Browse",                     4.5, 0.45, 0.30, False),
    ("BrowseCategories",           5.5, 0.70, 0.80, False),
    ("SearchItemsInCategory",     12.0, 1.20, 1.60, False),
    ("BrowseRegions",              3.0, 0.70, 0.80, False),
    ("BrowseCategoriesInRegion",   3.0, 0.80, 0.90, False),
    ("SearchItemsInRegion",        6.0, 1.20, 1.55, False),
    ("ViewItem",                  12.5, 1.10, 1.05, False),
    ("ViewUserInfo",               4.0, 1.00, 1.00, False),
    ("ViewBidHistory",             3.0, 1.10, 1.25, False),
    ("BuyNowAuth",                 1.5, 0.60, 0.35, False),
    ("BuyNow",                     1.4, 1.00, 0.90, False),
    ("StoreBuyNow",                1.6, 1.00, 1.00, True),
    ("PutBidAuth",                 3.3, 0.60, 0.35, False),
    ("PutBid",                     3.2, 1.10, 1.05, False),
    ("StoreBid",                   7.4, 1.00, 1.00, True),
    ("PutCommentAuth",             1.0, 0.60, 0.35, False),
    ("PutComment",                 0.9, 1.00, 0.90, False),
    ("StoreComment",               1.4, 1.00, 1.00, True),
    ("Sell",                       1.8, 0.50, 0.30, False),
    ("SelectCategoryToSellItem",   1.6, 0.60, 0.45, False),
    ("SellItemForm",               1.7, 0.60, 0.40, False),
    ("RegisterItem",               3.5, 1.00, 1.00, True),
    ("AboutMe",                    6.4, 1.20, 1.40, False),
]


def _normalized_interactions() -> tuple[Interaction, ...]:
    """Build the table with factors renormalized so that mix-weighted
    app/db factors are exactly 1.0 and the write fraction is exactly the
    calibrated 15 % (weights of write interactions are rescaled)."""
    total = sum(w for _, w, _, _, _ in _RAW)
    write_w = sum(w for _, w, _, _, wr in _RAW if wr)
    read_w = total - write_w
    target_write = DEFAULT_CALIBRATION.write_fraction
    # Rescale weights so writes are exactly the target fraction.
    w_scale = target_write / (write_w / total)
    r_scale = (1.0 - target_write) / (read_w / total)
    rows = []
    for name, w, af, dfac, wr in _RAW:
        weight = w / total * (w_scale if wr else r_scale)
        rows.append((name, weight, af, dfac, wr))
    # Renormalize factors to weighted mean 1.0 (writes and reads separately
    # for the db factor, since their base demands differ).
    app_mean = sum(w * af for _, w, af, _, _ in rows)
    db_read_mean = sum(w * dfac for _, w, _, dfac, wr in rows if not wr) / (
        1.0 - target_write
    )
    db_write_mean = sum(w * dfac for _, w, _, dfac, wr in rows if wr) / target_write
    out = []
    for name, w, af, dfac, wr in rows:
        db_norm = dfac / (db_write_mean if wr else db_read_mean)
        out.append(Interaction(name, w, af / app_mean, db_norm, wr))
    return tuple(out)


INTERACTIONS: tuple[Interaction, ...] = _normalized_interactions()
_BY_NAME = {i.name: i for i in INTERACTIONS}


def interaction(name: str) -> Interaction:
    """Look up an interaction by name."""
    return _BY_NAME[name]


class RubisModel:
    """Builds :class:`WebRequest` objects for interactions, applying the
    calibrated demands and (optionally) Gamma demand variability."""

    def __init__(
        self,
        kernel: SimKernel,
        calibration: Calibration = DEFAULT_CALIBRATION,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.kernel = kernel
        self.cal = calibration
        self.rng = rng if rng is not None else np.random.default_rng(0)

    #: aggregate shape above which the Gamma draw switches to its Gaussian
    #: limit.  At the default per-request shape of 4 this is cohorts of
    #: K >= 10_000.  Below the switch the draw is the exact Gamma sum
    #: (bit-identical to the historical behaviour); above it the
    #: central-limit normal has relative skew ``2/sqrt(k) < 1%``, and —
    #: unlike an astronomically-shaped ``rng.gamma`` — it can never
    #: silently return ``inf`` when ``shape * weight`` overflows the
    #: float range (``rng.gamma(inf, s)`` returns ``inf`` without raising,
    #: which would wedge the simulated CPU forever).
    GAUSSIAN_LIMIT_SHAPE = 4.0e4

    def _vary(self, mean: float, weight: int = 1) -> float:
        """Draw one demand — or, for ``weight > 1``, the *sum* of ``weight``
        i.i.d. demands in a single draw (Gamma additivity: the sum of ``w``
        ``Gamma(shape, scale)`` variates is ``Gamma(w * shape, scale)``).
        At ``weight == 1`` the RNG consumption is unchanged.

        Valid range: any ``weight`` with finite ``shape * weight`` and
        ``mean * weight``.  Aggregate shapes at or above
        :data:`GAUSSIAN_LIMIT_SHAPE` use the Gaussian limit (one normal
        draw, clipped at zero); non-finite aggregates raise instead of
        producing a silent ``inf`` demand."""
        shape = self.cal.demand_gamma_shape
        if not shape or mean <= 0.0:
            return mean * weight
        k = shape * weight
        total = mean * weight
        if not (math.isfinite(k) and math.isfinite(total)):
            raise ValueError(
                f"demand draw overflow: shape*weight={k!r}, "
                f"mean*weight={total!r} (weight={weight})"
            )
        if k >= self.GAUSSIAN_LIMIT_SHAPE:
            draw = total + (total / math.sqrt(k)) * self.rng.standard_normal()
            return float(max(draw, 0.0))
        return float(self.rng.gamma(k, mean / shape))

    def make_request(
        self,
        inter: Interaction,
        client_id: Optional[int] = None,
        weight: int = 1,
    ) -> WebRequest:
        cal = self.cal
        db_base = cal.db_write_demand_s if inter.is_write else cal.db_read_demand_s
        return WebRequest(
            self.kernel,
            interaction=inter.name,
            is_write=inter.is_write,
            app_demand_pre=self._vary(cal.app_demand_pre_s * inter.app_factor, weight),
            app_demand_post=self._vary(
                cal.app_demand_post_s * inter.app_factor, weight
            ),
            db_demand=self._vary(db_base * inter.db_factor, weight),
            client_id=client_id,
            weight=weight,
        )


class MixNavigator:
    """Draws each next interaction i.i.d. from the stationary mix."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self._names = [i.name for i in INTERACTIONS]
        self._weights = np.asarray([i.mix_weight for i in INTERACTIONS])
        self._weights = self._weights / self._weights.sum()

    def next_interaction(self) -> Interaction:
        idx = int(self.rng.choice(len(self._names), p=self._weights))
        return INTERACTIONS[idx]

    def reset(self) -> None:
        """Sessions are memoryless; nothing to reset."""


# Session graph for the Markov navigator: state -> [(next state, weight)].
# Structure follows RUBiS's navigation (browse flows, bid flows, sell
# flows); weights are coarse.
_TRANSITIONS: dict[str, list[tuple[str, float]]] = {
    "Home": [("Browse", 55.0), ("Register", 10.0), ("Sell", 15.0), ("AboutMe", 20.0)],
    "Register": [("RegisterUser", 90.0), ("Home", 10.0)],
    "RegisterUser": [("Browse", 70.0), ("Home", 30.0)],
    "Browse": [("BrowseCategories", 55.0), ("BrowseRegions", 45.0)],
    "BrowseCategories": [("SearchItemsInCategory", 90.0), ("Browse", 10.0)],
    "SearchItemsInCategory": [
        ("ViewItem", 60.0),
        ("SearchItemsInCategory", 25.0),
        ("Browse", 15.0),
    ],
    "BrowseRegions": [("BrowseCategoriesInRegion", 90.0), ("Browse", 10.0)],
    "BrowseCategoriesInRegion": [("SearchItemsInRegion", 90.0), ("Browse", 10.0)],
    "SearchItemsInRegion": [
        ("ViewItem", 60.0),
        ("SearchItemsInRegion", 25.0),
        ("Browse", 15.0),
    ],
    "ViewItem": [
        ("ViewUserInfo", 16.0),
        ("ViewBidHistory", 12.0),
        ("PutBidAuth", 30.0),
        ("BuyNowAuth", 12.0),
        ("Browse", 30.0),
    ],
    "ViewUserInfo": [("PutCommentAuth", 25.0), ("Browse", 75.0)],
    "ViewBidHistory": [("ViewItem", 60.0), ("Browse", 40.0)],
    "BuyNowAuth": [("BuyNow", 95.0), ("Home", 5.0)],
    "BuyNow": [("StoreBuyNow", 75.0), ("Browse", 25.0)],
    "StoreBuyNow": [("Browse", 60.0), ("Home", 40.0)],
    "PutBidAuth": [("PutBid", 95.0), ("Home", 5.0)],
    "PutBid": [("StoreBid", 80.0), ("ViewItem", 20.0)],
    "StoreBid": [("ViewItem", 45.0), ("Browse", 45.0), ("Home", 10.0)],
    "PutCommentAuth": [("PutComment", 95.0), ("Home", 5.0)],
    "PutComment": [("StoreComment", 85.0), ("Browse", 15.0)],
    "StoreComment": [("Browse", 60.0), ("Home", 40.0)],
    "Sell": [("SelectCategoryToSellItem", 90.0), ("Home", 10.0)],
    "SelectCategoryToSellItem": [("SellItemForm", 90.0), ("Home", 10.0)],
    "SellItemForm": [("RegisterItem", 85.0), ("Home", 15.0)],
    "RegisterItem": [("Sell", 25.0), ("Browse", 45.0), ("Home", 30.0)],
    "AboutMe": [("Browse", 55.0), ("ViewItem", 30.0), ("Home", 15.0)],
}


class MarkovNavigator:
    """Walks the RUBiS session graph; starts (and restarts) at Home."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self.state = "Home"
        # Precompute normalized transition vectors.
        self._table: dict[str, tuple[list[str], np.ndarray]] = {}
        for state, successors in _TRANSITIONS.items():
            names = [n for n, _ in successors]
            weights = np.asarray([w for _, w in successors], dtype=float)
            self._table[state] = (names, weights / weights.sum())

    def next_interaction(self) -> Interaction:
        current = interaction(self.state)
        names, probs = self._table[self.state]
        self.state = names[int(self.rng.choice(len(names), p=probs))]
        return current

    def reset(self) -> None:
        self.state = "Home"


def transition_table() -> dict[str, list[tuple[str, float]]]:
    """The raw session graph (exported for validation tests)."""
    return {k: list(v) for k, v in _TRANSITIONS.items()}
