"""Workload trace capture and replay.

The RUBiS client emulator is *closed-loop*: arrival times depend on
response times, so two configurations never see the same request stream.
For controlled comparisons (e.g. balancing-policy studies) it is useful to
capture the exact stream one run produced and replay it *open-loop* —
identical arrival instants and identical per-request demands — against any
other configuration.

Caveat (by design): open-loop replay removes the think-time feedback.  A
configuration slower than the recording one will accumulate backlog instead
of throttling the clients, so replay is for comparing configurations of
similar capacity, not for reproducing Figure 8's closed-loop collapse.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Optional

from repro.legacy.requests import WebRequest
from repro.simulation.kernel import SimKernel


class RequestRecord:
    """One captured request."""

    __slots__ = (
        "t",
        "interaction",
        "is_static",
        "is_write",
        "app_pre",
        "app_post",
        "db",
        "static",
        "client_id",
    )

    def __init__(
        self,
        t: float,
        interaction: str,
        is_static: bool,
        is_write: bool,
        app_pre: float,
        app_post: float,
        db: float,
        static: float,
        client_id: Optional[int],
    ) -> None:
        self.t = t
        self.interaction = interaction
        self.is_static = is_static
        self.is_write = is_write
        self.app_pre = app_pre
        self.app_post = app_post
        self.db = db
        self.static = static
        self.client_id = client_id

    @classmethod
    def from_request(cls, t: float, request: WebRequest) -> "RequestRecord":
        return cls(
            t,
            request.interaction,
            request.is_static,
            request.is_write,
            request.app_demand_pre,
            request.app_demand_post,
            request.db_demand,
            request.static_demand,
            request.client_id,
        )

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "interaction": self.interaction,
            "is_static": self.is_static,
            "is_write": self.is_write,
            "app_pre": self.app_pre,
            "app_post": self.app_post,
            "db": self.db,
            "static": self.static,
            "client_id": self.client_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestRecord":
        return cls(
            data["t"],
            data["interaction"],
            data["is_static"],
            data["is_write"],
            data["app_pre"],
            data["app_post"],
            data["db"],
            data["static"],
            data.get("client_id"),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestRecord):
            return NotImplemented
        return self.to_dict() == other.to_dict()


class WorkloadTrace:
    """An ordered sequence of request records."""

    def __init__(self) -> None:
        self._records: list[RequestRecord] = []

    def append(self, record: RequestRecord) -> None:
        if self._records and record.t < self._records[-1].t:
            raise ValueError("trace records must be appended in time order")
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RequestRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> RequestRecord:
        return self._records[idx]

    @property
    def duration_s(self) -> float:
        return self._records[-1].t if self._records else 0.0

    def write_fraction(self) -> float:
        if not self._records:
            return 0.0
        return sum(r.is_write for r in self._records) / len(self._records)

    # -- persistence (JSON lines) ------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            for record in self._records:
                fh.write(json.dumps(record.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        trace = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    trace.append(RequestRecord.from_dict(json.loads(line)))
        return trace


class TraceRecorder:
    """Wraps an entry point; captures every request that flows through."""

    def __init__(self, kernel: SimKernel, entry: Callable[[WebRequest], None]):
        self.kernel = kernel
        self.entry = entry
        self.trace = WorkloadTrace()

    def __call__(self, request: WebRequest) -> None:
        self.trace.append(RequestRecord.from_request(self.kernel.now, request))
        self.entry(request)


class TraceReplayer:
    """Replays a trace open-loop against an entry point.

    Each record is scheduled at its original instant with its original
    demands; completions/failures are reported through the provided
    collector (same interface as the client emulator uses).
    """

    def __init__(
        self,
        kernel: SimKernel,
        trace: WorkloadTrace,
        entry: Callable[[WebRequest], None],
        collector=None,
    ) -> None:
        self.kernel = kernel
        self.trace = trace
        self.entry = entry
        self.collector = collector
        self.issued = 0

    def start(self, offset_s: Optional[float] = None) -> None:
        """Schedule the whole trace.  ``offset_s`` shifts every arrival
        (default: enough to land the first record at the current time)."""
        if offset_s is None:
            first = self.trace[0].t if len(self.trace) else 0.0
            offset_s = max(0.0, self.kernel.now - first)
        for record in self.trace:
            self.kernel.schedule_at(record.t + offset_s, self._issue, record)

    def _issue(self, record: RequestRecord) -> None:
        request = WebRequest(
            self.kernel,
            record.interaction,
            is_static=record.is_static,
            is_write=record.is_write,
            app_demand_pre=record.app_pre,
            app_demand_post=record.app_post,
            db_demand=record.db,
            static_demand=record.static,
            client_id=record.client_id,
        )
        self.issued += 1
        if self.collector is not None:
            request.completion.add_callback(self._report(request))
        self.entry(request)

    def _report(self, request: WebRequest):
        def done(signal) -> None:
            if signal.error is not None:
                self.collector.record_failure(self.kernel.now)
            else:
                self.collector.record_latency(self.kernel.now, request.latency)

        return done
