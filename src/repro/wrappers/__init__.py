"""Fractal wrappers for the legacy servers (§3.2).

"Any software managed with Jade is wrapped in a Fractal component which
interfaces its administration procedures ... all components provide the
same (uniform) management interface for the encapsulated software, and the
corresponding implementation (the wrapper) is specific to each software."

Each wrapper is the *content* of a primitive Fractal component.  The
controllers drive it through the uniform hooks (``on_start``, ``on_bind``,
``on_attribute_changed``...), and the wrapper translates those into the
proprietary world of its legacy program: writing ``httpd.conf`` or
``worker.properties``, invoking start scripts, calling C-JDBC's
administrative backend API.  Management programs never see any of that —
they see components.
"""

from repro.wrappers.apache import ApacheWrapper, make_apache_component
from repro.wrappers.base import LegacyWrapper, WrapperError
from repro.wrappers.cjdbc import CJdbcWrapper, make_cjdbc_component
from repro.wrappers.l4switch import L4SwitchWrapper, make_l4switch_component
from repro.wrappers.mysql import MySqlWrapper, make_mysql_component
from repro.wrappers.plb import PlbWrapper, make_plb_component
from repro.wrappers.registry import default_factory_registry
from repro.wrappers.tomcat import TomcatWrapper, make_tomcat_component

__all__ = [
    "ApacheWrapper",
    "CJdbcWrapper",
    "L4SwitchWrapper",
    "LegacyWrapper",
    "MySqlWrapper",
    "PlbWrapper",
    "TomcatWrapper",
    "WrapperError",
    "default_factory_registry",
    "make_apache_component",
    "make_cjdbc_component",
    "make_l4switch_component",
    "make_mysql_component",
    "make_plb_component",
    "make_tomcat_component",
]
