"""Apache wrapper.

"The attribute controller interface is used to set attributes related to
the local execution of the Apache server.  For instance, a modification of
the port attribute of the Apache component is reflected in the httpd.conf
file ... Invoking the bind operation on the Apache component sets up a
binding between one instance of Apache and one instance of Tomcat ...
reflected at the legacy layer in the worker.properties file ... The life
cycle controller interface is ... implemented by calling the Apache
commands for starting/stopping a server." (§3.2)
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.fractal.interfaces import (
    CLIENT,
    COLLECTION,
    OPTIONAL,
    SERVER,
    Interface,
    InterfaceType,
)
from repro.legacy.apache import ApacheServer
from repro.legacy.configfiles import HttpdConf, Worker, WorkerProperties
from repro.legacy.directory import Directory
from repro.simulation.kernel import SimKernel
from repro.wrappers.base import LegacyWrapper, WrapperError

HTTPD_CONF = ApacheServer.CONFIG_PATH
WORKERS_FILE = "/etc/apache/worker.properties"


class ApacheWrapper(LegacyWrapper):
    """Manages one Apache httpd instance."""

    startup_time_s = 1.5

    def __init__(
        self,
        kernel: SimKernel,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, node, directory, lan)
        self._workers: dict[str, Worker] = {}  # binding instance -> worker

    def attached(self, component: Component) -> None:
        super().attached(component)
        self.server = ApacheServer(
            self.kernel, component.name, self.node, self.directory, self.lan
        )

    # -- uniform hooks ----------------------------------------------------
    def on_attribute_changed(self, component: Component, name: str, value: Any) -> None:
        if self.running and name == "port":
            raise WrapperError(
                f"{component.name}: changing the port requires a stop "
                "(Apache re-reads httpd.conf only at startup)"
            )
        self.write_config()

    def on_bind(self, component: Component, instance: str, server_itf: Interface) -> None:
        peer = self._peer(server_itf)
        host, port = peer.endpoint(server_itf.name)
        self._workers[instance] = Worker(_worker_name(instance), host, port)
        self.write_config()

    def on_unbind(self, component: Component, instance: str) -> None:
        self._workers.pop(instance, None)
        self.write_config()

    # -- wrapper contract --------------------------------------------------
    def write_config(self) -> None:
        conf = HttpdConf(
            listen=int(self._attr("port", 80)),
            server_name=str(self._attr("server_name", self.node.name)),
            max_clients=int(self._attr("max_clients", 150)),
            jk_workers_file=WORKERS_FILE,
        )
        self.node.fs.write(HTTPD_CONF, conf.render())
        workers = WorkerProperties(list(self._workers.values()))
        self.node.fs.write(WORKERS_FILE, workers.render())

    def endpoint(self, itf_name: str) -> tuple[str, int]:
        if itf_name != "http":
            raise WrapperError(f"apache exposes no endpoint behind {itf_name!r}")
        return (self.node.name, int(self._attr("port", 80)))


def _worker_name(instance: str) -> str:
    """A binding instance name like ``ajp-0`` maps to mod_jk worker
    ``worker0`` (worker names must not contain dots or dashes)."""
    suffix = instance.rsplit("-", 1)[-1] if "-" in instance else instance
    return f"worker{suffix}"


def make_apache_component(
    name: str,
    attributes: Optional[dict[str, Any]] = None,
    *,
    kernel: SimKernel,
    node: Node,
    directory: Directory,
    lan: Optional[Lan] = None,
    **_: Any,
) -> Component:
    """Factory for Apache components (registered as ADL type ``apache``).

    Interfaces: ``http`` (server) — client traffic; ``ajp`` (client,
    collection, *static*: rebinding requires a stop, like the real mod_jk).
    """
    wrapper = ApacheWrapper(kernel, node, directory, lan)
    component = Component(
        name,
        interface_types=[
            InterfaceType("http", "http", role=SERVER),
            InterfaceType(
                "ajp",
                "ajp",
                role=CLIENT,
                contingency=OPTIONAL,
                cardinality=COLLECTION,
                dynamic=False,
            ),
        ],
        content=wrapper,
    )
    ac = component.attribute_controller
    ac.declare("port", int((attributes or {}).get("port", 80)))
    ac.declare("max_clients", int((attributes or {}).get("max_clients", 150)))
    ac.declare("server_name", str((attributes or {}).get("server_name", node.name)))
    wrapper.write_config()
    return component
