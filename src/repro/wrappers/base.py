"""Wrapper base class.

A wrapper owns one legacy server instance: it writes the server's initial
configuration files onto the node at construction time (what the Software
Installation Service's post-install step does on the real testbed), and
afterwards keeps the files in sync with the component's attributes and
bindings.  The legacy server itself only ever reads the files.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.legacy.directory import Directory
from repro.legacy.server import LegacyServer
from repro.simulation.kernel import SimKernel


class WrapperError(RuntimeError):
    """A management operation could not be reflected onto the legacy layer."""


class LegacyWrapper:
    """Common wrapper machinery.

    Subclasses set :attr:`server` (the legacy instance) and implement
    :meth:`write_config` (regenerate the proprietary files from the current
    management state) plus :meth:`endpoint` (the host:port behind a given
    server interface, used by peers when a binding is created).
    """

    #: simulated duration of the start script (used by actuators to model
    #: reconfiguration latency)
    startup_time_s: float = 2.0

    def __init__(
        self,
        kernel: SimKernel,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        self.kernel = kernel
        self.node = node
        self.directory = directory
        self.lan = lan
        self.server: Optional[LegacyServer] = None
        self.component: Optional[Component] = None

    # -- Fractal integration -------------------------------------------
    def attached(self, component: Component) -> None:
        """Called by :class:`~repro.fractal.component.Component` when the
        wrapper becomes the content of a component."""
        self.component = component

    # -- uniform hooks (invoked by the controllers) ---------------------
    def on_start(self, component: Component) -> None:
        self.write_config()
        assert self.server is not None
        self.server.start()

    def on_stop(self, component: Component) -> None:
        assert self.server is not None
        self.server.stop()

    # -- wrapper contract ------------------------------------------------
    def write_config(self) -> None:
        """(Re)generate the legacy config files from management state."""
        raise NotImplementedError

    def endpoint(self, itf_name: str) -> tuple[str, int]:
        """host:port behind the named server interface."""
        raise NotImplementedError

    def jdbc_driver(self) -> str:
        """JDBC driver scheme peers should use to reach this component
        (only meaningful for database-facing wrappers)."""
        raise WrapperError(f"{type(self).__name__} is not a JDBC endpoint")

    # -- conveniences ------------------------------------------------------
    @property
    def running(self) -> bool:
        return self.server is not None and self.server.running

    def _attr(self, name: str, default: Any = None) -> Any:
        assert self.component is not None
        ac = self.component.attribute_controller
        if ac.has_attribute(name):
            return ac.get(name)
        return default

    def _peer(self, server_itf) -> "LegacyWrapper":
        """The wrapper on the other side of a binding."""
        delegate = server_itf.delegate
        if not isinstance(delegate, LegacyWrapper):
            raise WrapperError(
                f"binding target {server_itf.qualified_name} is not a wrapper"
            )
        return delegate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        comp = self.component.name if self.component else "?"
        return f"<{type(self).__name__} for {comp} on {self.node.name}>"
