"""C-JDBC wrapper.

The ``backends`` client interface is **dynamic**: binding a MySQL component
while the controller runs performs a *live insert* — the wrapper calls the
controller's administrative API, which replays the recovery log onto the
new replica before enabling it (§4.1).  Unbinding performs a live detach
with a checkpoint.  The config file is kept in sync so a controller restart
reconstructs the same backend set.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.fractal.interfaces import (
    CLIENT,
    COLLECTION,
    MANDATORY,
    SERVER,
    Interface,
    InterfaceType,
)
from repro.legacy.cjdbc import CJdbcController
from repro.legacy.configfiles import CjdbcBackend, CjdbcXml
from repro.legacy.directory import Directory
from repro.simulation.kernel import SimKernel
from repro.wrappers.base import LegacyWrapper, WrapperError
from repro.wrappers.mysql import MySqlWrapper


class CJdbcWrapper(LegacyWrapper):
    """Manages the C-JDBC controller."""

    startup_time_s = 2.5

    def __init__(
        self,
        kernel: SimKernel,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, node, directory, lan)
        self._backends: dict[str, CjdbcBackend] = {}  # binding instance -> decl

    def attached(self, component: Component) -> None:
        super().attached(component)
        self.server = CJdbcController(
            self.kernel, component.name, self.node, self.directory, self.lan
        )

    @property
    def controller(self) -> CJdbcController:
        assert isinstance(self.server, CJdbcController)
        return self.server

    # -- uniform hooks ----------------------------------------------------
    def on_attribute_changed(self, component: Component, name: str, value: Any) -> None:
        if self.running and name == "port":
            raise WrapperError(f"{component.name}: changing the port requires a stop")
        self.write_config()

    def on_bind(self, component: Component, instance: str, server_itf: Interface) -> None:
        peer = self._peer(server_itf)
        if not isinstance(peer, MySqlWrapper):
            raise WrapperError(
                f"{component.name}: backends must be MySQL components, got "
                f"{type(peer).__name__}"
            )
        host, port = peer.endpoint(server_itf.name)
        self._backends[instance] = CjdbcBackend(instance, host, port)
        self.write_config()
        if self.running:
            # Live insert with recovery-log synchronization.
            self.controller.attach_backend(instance, peer.mysql)

    def on_unbind(self, component: Component, instance: str) -> None:
        self._backends.pop(instance, None)
        self.write_config()
        if self.running:
            try:
                self.controller.detach_backend(instance)
            except KeyError:
                # Backend died before the unbind (crash repair path).
                self.controller.drop_backend(instance)

    # -- wrapper contract --------------------------------------------------
    def write_config(self) -> None:
        conf = CjdbcXml(
            vdb_name=str(self._attr("vdb_name", "rubis")),
            port=int(self._attr("port", 25322)),
            policy=str(self._attr("policy", "LeastPendingRequestsFirst")),
            backends=list(self._backends.values()),
        )
        self.node.fs.write(CJdbcController.CONFIG_PATH, conf.render())

    def endpoint(self, itf_name: str) -> tuple[str, int]:
        if itf_name != "jdbc":
            raise WrapperError(f"cjdbc exposes no endpoint behind {itf_name!r}")
        return (self.node.name, int(self._attr("port", 25322)))

    def jdbc_driver(self) -> str:
        return "cjdbc"


def make_cjdbc_component(
    name: str,
    attributes: Optional[dict[str, Any]] = None,
    *,
    kernel: SimKernel,
    node: Node,
    directory: Directory,
    lan: Optional[Lan] = None,
    **_: Any,
) -> Component:
    """Factory for C-JDBC components (ADL type ``cjdbc``)."""
    wrapper = CJdbcWrapper(kernel, node, directory, lan)
    component = Component(
        name,
        interface_types=[
            InterfaceType("jdbc", "jdbc", role=SERVER),
            InterfaceType(
                "backends",
                "mysql",
                role=CLIENT,
                contingency=MANDATORY,
                cardinality=COLLECTION,
                dynamic=True,
            ),
        ],
        content=wrapper,
    )
    ac = component.attribute_controller
    attrs = attributes or {}
    ac.declare("port", int(attrs.get("port", 25322)))
    ac.declare("policy", str(attrs.get("policy", "LeastPendingRequestsFirst")))
    ac.declare("vdb_name", str(attrs.get("vdb_name", "rubis")))
    wrapper.write_config()
    return component
