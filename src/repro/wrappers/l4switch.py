"""L4-switch wrapper.

The switch is hardware: it has no node, no filesystem and no process.  The
wrapper still presents the uniform component interface — which is the whole
point: "adding or removing a servlet server component is done in the same
way as adding or removing a database" (§7), and likewise managing a
hardware switch looks exactly like managing Apache.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.fractal.component import Component
from repro.fractal.interfaces import (
    CLIENT,
    COLLECTION,
    OPTIONAL,
    SERVER,
    Interface,
    InterfaceType,
)
from repro.legacy.directory import Directory
from repro.legacy.l4switch import L4Switch
from repro.simulation.kernel import SimKernel
from repro.wrappers.base import WrapperError


class L4SwitchWrapper:
    """Content object for the L4 switch component."""

    startup_time_s = 0.0

    def __init__(
        self,
        kernel: SimKernel,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        self.kernel = kernel
        self.directory = directory
        self.lan = lan
        self.component: Optional[Component] = None
        self.switch: Optional[L4Switch] = None
        self._active = False

    def attached(self, component: Component) -> None:
        self.component = component
        self.switch = L4Switch(self.kernel, component.name, self.directory, self.lan)

    # -- uniform hooks ----------------------------------------------------
    def on_start(self, component: Component) -> None:
        self._active = True

    def on_stop(self, component: Component) -> None:
        self._active = False

    def on_bind(self, component: Component, instance: str, server_itf: Interface) -> None:
        peer = server_itf.delegate
        host, port = peer.endpoint(server_itf.name)
        assert self.switch is not None
        self.switch.add_endpoint(host, port)

    def on_unbind(self, component: Component, instance: str) -> None:
        # The endpoint to drop is recorded in the binding controller.
        assert self.component is not None and self.switch is not None
        server_itf = self.component.binding_controller.lookup(instance)
        assert server_itf is not None
        peer = server_itf.delegate
        host, port = peer.endpoint(server_itf.name)
        self.switch.remove_endpoint(host, port)

    # -- wrapper contract ---------------------------------------------------
    @property
    def running(self) -> bool:
        return self._active

    def endpoint(self, itf_name: str) -> tuple[str, int]:
        raise WrapperError("the L4 switch has no host endpoint; clients hit its VIP")


def make_l4switch_component(
    name: str,
    attributes: Optional[dict[str, Any]] = None,
    *,
    kernel: SimKernel,
    directory: Directory,
    lan: Optional[Lan] = None,
    **_: Any,
) -> Component:
    """Factory for L4 switch components (ADL type ``l4switch``).

    Interfaces: ``http`` (server, the virtual IP clients connect to) and
    ``web`` (client collection, dynamic — ports are re-patched live).
    """
    wrapper = L4SwitchWrapper(kernel, directory, lan)
    component = Component(
        name,
        interface_types=[
            InterfaceType("http", "http", role=SERVER),
            InterfaceType(
                "web",
                "http",
                role=CLIENT,
                # Optional: the switch hardware is operational even before
                # any port is patched to a web server.
                contingency=OPTIONAL,
                cardinality=COLLECTION,
                dynamic=True,
            ),
        ],
        content=wrapper,
    )
    return component
