"""MySQL wrapper.

Exposes two server interfaces backed by the same listening port:

* ``mysql`` — the replication-facing interface C-JDBC backends bind to;
* ``jdbc``  — a direct JDBC interface for non-clustered deployments.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.fractal.interfaces import SERVER, InterfaceType
from repro.legacy.configfiles import MyCnf
from repro.legacy.directory import Directory
from repro.legacy.mysql import MySqlServer
from repro.simulation.kernel import SimKernel
from repro.wrappers.base import LegacyWrapper, WrapperError


class MySqlWrapper(LegacyWrapper):
    """Manages one MySQL replica."""

    startup_time_s = 3.0

    def attached(self, component: Component) -> None:
        super().attached(component)
        self.server = MySqlServer(
            self.kernel, component.name, self.node, self.directory, self.lan
        )

    @property
    def mysql(self) -> MySqlServer:
        assert isinstance(self.server, MySqlServer)
        return self.server

    # -- uniform hooks ----------------------------------------------------
    def on_attribute_changed(self, component: Component, name: str, value: Any) -> None:
        if self.running and name == "port":
            raise WrapperError(f"{component.name}: changing the port requires a stop")
        self.write_config()
        if name in ("enforce_limits", "max_connections"):
            self._apply_limits()

    def on_start(self, component: Component) -> None:
        super().on_start(component)
        self._apply_limits()

    def _apply_limits(self) -> None:
        if self.server is None:
            return
        self.server.admission_limit = (
            int(self._attr("max_connections", 200))
            if self._attr("enforce_limits", False)
            else None
        )

    # -- wrapper contract --------------------------------------------------
    def write_config(self) -> None:
        conf = MyCnf(
            port=int(self._attr("port", 3306)),
            datadir=str(self._attr("datadir", "/var/lib/mysql")),
            max_connections=int(self._attr("max_connections", 200)),
        )
        self.node.fs.write(MySqlServer.CONFIG_PATH, conf.render())

    def endpoint(self, itf_name: str) -> tuple[str, int]:
        if itf_name in ("mysql", "jdbc"):
            return (self.node.name, int(self._attr("port", 3306)))
        raise WrapperError(f"mysql exposes no endpoint behind {itf_name!r}")

    def jdbc_driver(self) -> str:
        return "mysql"


def make_mysql_component(
    name: str,
    attributes: Optional[dict[str, Any]] = None,
    *,
    kernel: SimKernel,
    node: Node,
    directory: Directory,
    lan: Optional[Lan] = None,
    **_: Any,
) -> Component:
    """Factory for MySQL components (ADL type ``mysql``)."""
    wrapper = MySqlWrapper(kernel, node, directory, lan)
    component = Component(
        name,
        interface_types=[
            InterfaceType("mysql", "mysql", role=SERVER),
            InterfaceType("jdbc", "jdbc", role=SERVER),
        ],
        content=wrapper,
    )
    ac = component.attribute_controller
    attrs = attributes or {}
    ac.declare("port", int(attrs.get("port", 3306)))
    ac.declare("datadir", str(attrs.get("datadir", "/var/lib/mysql")))
    ac.declare("max_connections", int(attrs.get("max_connections", 200)))
    ac.declare(
        "enforce_limits",
        str(attrs.get("enforce_limits", "false")).lower() in ("true", "1", "yes"),
    )
    wrapper.write_config()
    return component
