"""PLB wrapper.

The ``workers`` client interface is dynamic: binding/unbinding a Tomcat
component while PLB runs rewrites ``plb.conf`` and triggers an online
``reload`` — no traffic is dropped, which is what lets the
self-optimization manager resize the application-server tier live.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.fractal.interfaces import (
    CLIENT,
    COLLECTION,
    MANDATORY,
    SERVER,
    Interface,
    InterfaceType,
)
from repro.legacy.configfiles import PlbConf
from repro.legacy.directory import Directory
from repro.legacy.plb import PlbBalancer
from repro.simulation.kernel import SimKernel
from repro.wrappers.base import LegacyWrapper, WrapperError


class PlbWrapper(LegacyWrapper):
    """Manages the PLB load balancer."""

    startup_time_s = 0.5

    def __init__(
        self,
        kernel: SimKernel,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, node, directory, lan)
        self._servers: dict[str, tuple[str, int]] = {}  # instance -> endpoint

    def attached(self, component: Component) -> None:
        super().attached(component)
        self.server = PlbBalancer(
            self.kernel, component.name, self.node, self.directory, self.lan
        )

    @property
    def balancer(self) -> PlbBalancer:
        assert isinstance(self.server, PlbBalancer)
        return self.server

    # -- uniform hooks ----------------------------------------------------
    def on_attribute_changed(self, component: Component, name: str, value: Any) -> None:
        if self.running and name == "port":
            raise WrapperError(f"{component.name}: changing the port requires a stop")
        self.write_config()
        if self.running:
            self.balancer.reload()

    def on_bind(self, component: Component, instance: str, server_itf: Interface) -> None:
        peer = self._peer(server_itf)
        self._servers[instance] = peer.endpoint(server_itf.name)
        self.write_config()
        if self.running:
            self.balancer.reload()

    def on_unbind(self, component: Component, instance: str) -> None:
        self._servers.pop(instance, None)
        self.write_config()
        if self.running:
            self.balancer.reload()

    # -- wrapper contract --------------------------------------------------
    def write_config(self) -> None:
        conf = PlbConf(
            listen=int(self._attr("port", 8888)),
            servers=sorted(self._servers.values()),
            policy=str(self._attr("policy", "roundrobin")),
        )
        self.node.fs.write(PlbBalancer.CONFIG_PATH, conf.render())

    def endpoint(self, itf_name: str) -> tuple[str, int]:
        if itf_name != "http":
            raise WrapperError(f"plb exposes no endpoint behind {itf_name!r}")
        return (self.node.name, int(self._attr("port", 8888)))


def make_plb_component(
    name: str,
    attributes: Optional[dict[str, Any]] = None,
    *,
    kernel: SimKernel,
    node: Node,
    directory: Directory,
    lan: Optional[Lan] = None,
    **_: Any,
) -> Component:
    """Factory for PLB components (ADL type ``plb``)."""
    wrapper = PlbWrapper(kernel, node, directory, lan)
    component = Component(
        name,
        interface_types=[
            InterfaceType("http", "http", role=SERVER),
            InterfaceType(
                "workers",
                "http",
                role=CLIENT,
                contingency=MANDATORY,
                cardinality=COLLECTION,
                dynamic=True,
            ),
        ],
        content=wrapper,
    )
    ac = component.attribute_controller
    attrs = attributes or {}
    ac.declare("port", int(attrs.get("port", 8888)))
    ac.declare("policy", str(attrs.get("policy", "roundrobin")))
    wrapper.write_config()
    return component
