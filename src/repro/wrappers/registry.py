"""Default component-factory registry.

Maps the ADL type names used by the J2EE architecture descriptions to the
wrapper factories of this package.  The deployment service resolves types
through this registry (new legacy software = write a wrapper + register a
factory, nothing else changes — the paper's extensibility argument).
"""

from __future__ import annotations

from repro.fractal.adl import ComponentFactoryRegistry
from repro.wrappers.apache import make_apache_component
from repro.wrappers.cjdbc import make_cjdbc_component
from repro.wrappers.l4switch import make_l4switch_component
from repro.wrappers.mysql import make_mysql_component
from repro.wrappers.plb import make_plb_component
from repro.wrappers.tomcat import make_tomcat_component


def default_factory_registry() -> ComponentFactoryRegistry:
    """Registry with every wrapper of the J2EE testbed registered."""
    registry = ComponentFactoryRegistry()
    registry.register("apache", make_apache_component)
    registry.register("tomcat", make_tomcat_component)
    registry.register("mysql", make_mysql_component)
    registry.register("cjdbc", make_cjdbc_component)
    registry.register("plb", make_plb_component)
    registry.register("l4switch", make_l4switch_component)
    return registry
