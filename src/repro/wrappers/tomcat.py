"""Tomcat wrapper.

Binding the ``jdbc`` client interface rewrites the datasource URL in
``server.xml`` to point at the peer (C-JDBC controller or a plain MySQL);
the servlets pick it up at the next start.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.fractal.interfaces import (
    CLIENT,
    MANDATORY,
    SERVER,
    Interface,
    InterfaceType,
)
from repro.legacy.configfiles import ServerXml
from repro.legacy.directory import Directory
from repro.legacy.tomcat import TomcatServer
from repro.simulation.kernel import SimKernel
from repro.wrappers.base import LegacyWrapper, WrapperError


class TomcatWrapper(LegacyWrapper):
    """Manages one Tomcat instance."""

    startup_time_s = 4.0

    def __init__(
        self,
        kernel: SimKernel,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, node, directory, lan)
        self._datasource_url = "jdbc:mysql://localhost:3306/rubis"

    def attached(self, component: Component) -> None:
        super().attached(component)
        self.server = TomcatServer(
            self.kernel, component.name, self.node, self.directory, self.lan
        )

    # -- uniform hooks ----------------------------------------------------
    def on_attribute_changed(self, component: Component, name: str, value: Any) -> None:
        if self.running and name in ("http_port", "ajp_port"):
            raise WrapperError(
                f"{component.name}: changing {name} requires a stop"
            )
        self.write_config()
        if name in ("enforce_limits", "max_threads"):
            self._apply_limits()

    def on_start(self, component: Component) -> None:
        super().on_start(component)
        self._apply_limits()

    def _apply_limits(self) -> None:
        if self.server is None:
            return
        self.server.admission_limit = (
            int(self._attr("max_threads", 150))
            if self._attr("enforce_limits", False)
            else None
        )

    def on_bind(self, component: Component, instance: str, server_itf: Interface) -> None:
        peer = self._peer(server_itf)
        host, port = peer.endpoint(server_itf.name)
        driver = peer.jdbc_driver()
        self._datasource_url = f"jdbc:{driver}://{host}:{port}/rubis"
        self.write_config()

    def on_unbind(self, component: Component, instance: str) -> None:
        self._datasource_url = "jdbc:mysql://localhost:3306/rubis"
        self.write_config()

    # -- wrapper contract --------------------------------------------------
    def write_config(self) -> None:
        conf = ServerXml(
            http_port=int(self._attr("http_port", 8080)),
            ajp_port=int(self._attr("ajp_port", 8009)),
            datasource_url=self._datasource_url,
            max_threads=int(self._attr("max_threads", 150)),
        )
        self.node.fs.write(TomcatServer.CONFIG_PATH, conf.render())

    def endpoint(self, itf_name: str) -> tuple[str, int]:
        if itf_name == "ajp":
            return (self.node.name, int(self._attr("ajp_port", 8009)))
        if itf_name == "http":
            return (self.node.name, int(self._attr("http_port", 8080)))
        raise WrapperError(f"tomcat exposes no endpoint behind {itf_name!r}")


def make_tomcat_component(
    name: str,
    attributes: Optional[dict[str, Any]] = None,
    *,
    kernel: SimKernel,
    node: Node,
    directory: Directory,
    lan: Optional[Lan] = None,
    **_: Any,
) -> Component:
    """Factory for Tomcat components (ADL type ``tomcat``).

    Interfaces: ``http`` and ``ajp`` (servers); ``jdbc`` (client, mandatory
    — a servlet container without its database is useless, so Fractal's
    start-time check refuses to start an unbound Tomcat).
    """
    wrapper = TomcatWrapper(kernel, node, directory, lan)
    component = Component(
        name,
        interface_types=[
            InterfaceType("http", "http", role=SERVER),
            InterfaceType("ajp", "ajp", role=SERVER),
            InterfaceType(
                "jdbc", "jdbc", role=CLIENT, contingency=MANDATORY, dynamic=False
            ),
        ],
        content=wrapper,
    )
    ac = component.attribute_controller
    attrs = attributes or {}
    ac.declare("http_port", int(attrs.get("http_port", 8080)))
    ac.declare("ajp_port", int(attrs.get("ajp_port", 8009)))
    ac.declare("max_threads", int(attrs.get("max_threads", 150)))
    # Off by default: the paper's testbed exhibits unbounded queueing
    # (Figure 8), not request rejection.
    ac.declare(
        "enforce_limits",
        str(attrs.get("enforce_limits", "false")).lower() in ("true", "1", "yes"),
    )
    wrapper.write_config()
    return component
