"""Shared fixtures: kernels, clusters, and pre-wired legacy stacks."""

from __future__ import annotations

import pytest

from repro.cluster import Lan, make_nodes
from repro.legacy import (
    CJdbcController,
    Directory,
    MySqlServer,
    PlbBalancer,
    TomcatServer,
    WebRequest,
)
from repro.legacy.configfiles import (
    CjdbcBackend,
    CjdbcXml,
    MyCnf,
    PlbConf,
    ServerXml,
)
from repro.simulation import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


@pytest.fixture
def lan():
    return Lan()


@pytest.fixture
def directory():
    return Directory()


class LegacyStack:
    """A running PLB → Tomcat → C-JDBC → MySQL chain on five nodes."""

    def __init__(self, kernel, lan, directory, extra_nodes: int = 3):
        self.kernel = kernel
        self.lan = lan
        self.directory = directory
        nodes = make_nodes(kernel, 5 + extra_nodes)
        self.n_plb, self.n_tc, self.n_cj, self.n_db, *rest = nodes
        self.spare_nodes = rest

        self.n_db.fs.write(MySqlServer.CONFIG_PATH, MyCnf(port=3306).render())
        self.mysql = MySqlServer(kernel, "mysql1", self.n_db, directory, lan)
        self.mysql.start()

        self.n_cj.fs.write(
            CJdbcController.CONFIG_PATH,
            CjdbcXml(backends=[CjdbcBackend("mysql1", self.n_db.name, 3306)]).render(),
        )
        self.cjdbc = CJdbcController(kernel, "cjdbc", self.n_cj, directory, lan)
        self.cjdbc.start()

        self.n_tc.fs.write(
            TomcatServer.CONFIG_PATH,
            ServerXml(
                datasource_url=f"jdbc:cjdbc://{self.n_cj.name}:25322/rubis"
            ).render(),
        )
        self.tomcat = TomcatServer(kernel, "tomcat1", self.n_tc, directory, lan)
        self.tomcat.start()

        self.n_plb.fs.write(
            PlbBalancer.CONFIG_PATH,
            PlbConf(servers=[(self.n_tc.name, 8080)]).render(),
        )
        self.plb = PlbBalancer(kernel, "plb", self.n_plb, directory, lan)
        self.plb.start()

    def request(
        self,
        write: bool = False,
        app_pre: float = 0.01,
        app_post: float = 0.002,
        db: float = 0.02,
    ) -> WebRequest:
        """Issue a request through the front balancer."""
        req = WebRequest(
            self.kernel,
            "ViewItem" if not write else "StoreBid",
            is_write=write,
            app_demand_pre=app_pre,
            app_demand_post=app_post,
            db_demand=db,
        )
        self.plb.handle(req)
        return req

    def add_mysql(self, name: str, node=None) -> MySqlServer:
        """Start another MySQL replica on a spare node (not yet attached)."""
        node = node if node is not None else self.spare_nodes.pop(0)
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf(port=3306).render())
        server = MySqlServer(self.kernel, name, node, self.directory, self.lan)
        server.start()
        return server

    def add_tomcat(self, name: str, node=None) -> TomcatServer:
        node = node if node is not None else self.spare_nodes.pop(0)
        node.fs.write(
            TomcatServer.CONFIG_PATH,
            ServerXml(
                datasource_url=f"jdbc:cjdbc://{self.n_cj.name}:25322/rubis"
            ).render(),
        )
        server = TomcatServer(self.kernel, name, node, self.directory, self.lan)
        server.start()
        return server


@pytest.fixture
def stack(kernel, lan, directory):
    return LegacyStack(kernel, lan, directory)
