"""Tests for the TierManager actuator on a real managed system."""

import pytest

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import ConstantProfile


@pytest.fixture
def system():
    """A quiescent managed system (managers built but not started)."""
    cfg = ExperimentConfig(
        profile=ConstantProfile(1, 10.0), managed=True, sample_nodes=False
    )
    return ManagedSystem(cfg)


class TestGrow:
    def test_app_grow_adds_replica_behind_plb(self, system):
        assert system.app_tier.grow()
        assert system.app_tier.busy
        system.kernel.run(until=60.0)
        assert not system.app_tier.busy
        assert system.app_tier.replica_count == 2
        assert system.app_tier.grows_completed == 1
        # New replica is wired: component started, PLB knows both workers.
        names = [c.name for c in system.app_tier.components()]
        assert names == ["tomcat", "tomcat2"]
        assert len(system.plb.content.balancer.backend_endpoints) == 2
        assert len(system.plb.binding_controller.bound_instances("workers")) == 2

    def test_db_grow_synchronizes_before_enabling(self, system):
        kernel = system.kernel
        controller = system.cjdbc.content.controller
        # Put some writes in the recovery log first.
        from repro.legacy import WebRequest

        for _ in range(20):
            req = WebRequest(kernel, "StoreBid", is_write=True, db_demand=0.01)
            controller.execute(req)
        kernel.run()
        assert controller.log.next_index == 20
        assert system.db_tier.grow()
        kernel.run(until=120.0)
        assert system.db_tier.replica_count == 2
        backends = controller.enabled_backends()
        assert len(backends) == 2
        digests = {b.server.state_digest for b in backends}
        assert len(digests) == 1  # replicas identical after replay

    def test_grow_installs_package(self, system):
        free_before = system.cluster.free_nodes()
        system.app_tier.grow()
        system.kernel.run(until=60.0)
        new_node = system.app_tier.nodes()[-1]
        assert new_node in free_before
        assert system.installer.is_installed("tomcat", new_node)

    def test_grow_busy_guard(self, system):
        assert system.app_tier.grow()
        assert not system.app_tier.grow()

    def test_grow_exhausts_pool(self, system):
        # 7 nodes: 4 taken by the initial deployment, 3 free.
        for _ in range(3):
            assert system.app_tier.grow()
            system.kernel.run(until=system.kernel.now + 60.0)
        assert not system.app_tier.grow()
        assert system.app_tier.grow_failures == 1

    def test_grow_records_metrics(self, system):
        system.app_tier.grow()
        system.kernel.run(until=60.0)
        changes = system.collector.replica_changes("application")
        assert changes[-1][1] == 2
        assert any("grow" in d for _, d in system.collector.reconfigurations)


class TestShrink:
    def test_shrink_reverses_grow(self, system):
        system.app_tier.grow()
        system.kernel.run(until=60.0)
        free_before = system.cluster.free_count
        assert system.app_tier.shrink()
        system.kernel.run(until=120.0)
        assert system.app_tier.replica_count == 1
        assert system.cluster.free_count == free_before + 1
        # PLB no longer routes to the retired worker.
        assert len(system.plb.content.balancer.backend_endpoints) == 1

    def test_shrink_refuses_last_replica(self, system):
        assert not system.app_tier.shrink()

    def test_db_shrink_checkpoints(self, system):
        kernel = system.kernel
        controller = system.cjdbc.content.controller
        system.db_tier.grow()
        kernel.run(until=60.0)
        from repro.legacy import WebRequest

        for _ in range(5):
            controller.execute(WebRequest(kernel, "w", is_write=True, db_demand=0.01))
        kernel.run()
        retired = system.db_tier.replicas[-1].binding_instance
        assert system.db_tier.shrink()
        kernel.run(until=kernel.now + 30.0)
        assert system.db_tier.replica_count == 1
        assert controller.log.checkpoint(retired) == 5

    def test_removed_component_leaves_architecture(self, system):
        system.app_tier.grow()
        system.kernel.run(until=60.0)
        system.app_tier.shrink()
        system.kernel.run(until=120.0)
        names = [
            c.name
            for c in system.app.root.content_controller.sub_components()
        ]
        assert "tomcat2" not in names


class TestRepair:
    def test_repair_replaces_crashed_app_replica(self, system):
        kernel = system.kernel
        system.app_tier.grow()
        kernel.run(until=60.0)
        victim = system.app_tier.replicas[-1]
        victim.node.crash()
        assert system.app_tier.repair(victim.component)
        kernel.run(until=180.0)
        assert system.app_tier.replica_count == 2
        # The crashed node is gone from the pool entirely.
        assert victim.node.name not in [n.name for n in system.cluster.free_nodes()]
        assert system.app_tier.repairs_completed == 1

    def test_repair_db_replica_resyncs_state(self, system):
        kernel = system.kernel
        controller = system.cjdbc.content.controller
        from repro.legacy import WebRequest

        for _ in range(10):
            controller.execute(WebRequest(kernel, "w", is_write=True, db_demand=0.01))
        kernel.run()
        system.db_tier.grow()
        kernel.run(until=120.0)
        victim = system.db_tier.replicas[-1]
        victim.node.crash()
        # The wrapper cleanup happens through repair.
        assert system.db_tier.repair(victim.component)
        kernel.run(until=400.0)
        backends = controller.enabled_backends()
        assert len(backends) == 2
        assert len({b.server.state_digest for b in backends}) == 1

    def test_repair_unknown_component_refused(self, system):
        from repro.fractal import Component

        assert not system.app_tier.repair(Component("ghost"))
