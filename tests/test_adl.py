"""Unit tests for the ADL parser and factory registry."""

import pytest

from repro.fractal import AdlError, ComponentFactoryRegistry, parse_adl
from repro.fractal.adl import BindingSpec, ComponentSpec
from repro.fractal.component import Component

GOOD = """
<definition name="app">
  <component name="web" composite="true">
    <component name="apache" type="apache" replicas="2" package="apache-httpd">
      <attribute name="port" value="80"/>
    </component>
  </component>
  <component name="tomcat" type="tomcat">
    <virtual-node name="vn1"/>
  </component>
  <binding client="apache.ajp" server="tomcat.ajp"/>
</definition>
"""


class TestParser:
    def test_parses_structure(self):
        d = parse_adl(GOOD)
        assert d.name == "app"
        web = d.spec("web")
        assert web.composite and len(web.children) == 1
        apache = d.spec("apache")
        assert apache.ctype == "apache"
        assert apache.replicas == 2
        assert apache.package == "apache-httpd"
        assert apache.attributes == {"port": "80"}
        assert d.spec("tomcat").virtual_node == "vn1"
        assert len(d.bindings) == 1

    def test_binding_accessors(self):
        b = parse_adl(GOOD).bindings[0]
        assert (b.client_component, b.client_interface) == ("apache", "ajp")
        assert (b.server_component, b.server_interface) == ("tomcat", "ajp")

    def test_invalid_xml(self):
        with pytest.raises(AdlError):
            parse_adl("<definition name='x'")

    def test_wrong_root_element(self):
        with pytest.raises(AdlError):
            parse_adl("<app name='x'/>")

    def test_missing_definition_name(self):
        with pytest.raises(AdlError):
            parse_adl("<definition/>")

    def test_component_without_name(self):
        with pytest.raises(AdlError):
            parse_adl('<definition name="x"><component type="t"/></definition>')

    def test_primitive_without_type(self):
        with pytest.raises(AdlError):
            parse_adl('<definition name="x"><component name="c"/></definition>')

    def test_composite_with_type_rejected(self):
        with pytest.raises(AdlError):
            ComponentSpec("c", ctype="t", composite=True)

    def test_bad_replicas_value(self):
        with pytest.raises(AdlError):
            parse_adl(
                '<definition name="x">'
                '<component name="c" type="t" replicas="many"/></definition>'
            )
        with pytest.raises(AdlError):
            ComponentSpec("c", ctype="t", replicas=0)

    def test_attribute_requires_name_and_value(self):
        with pytest.raises(AdlError):
            parse_adl(
                '<definition name="x"><component name="c" type="t">'
                '<attribute name="only-name"/></component></definition>'
            )

    def test_children_under_primitive_rejected(self):
        with pytest.raises(AdlError):
            parse_adl(
                '<definition name="x"><component name="c" type="t">'
                '<component name="inner" type="t"/></component></definition>'
            )

    def test_duplicate_component_names_rejected(self):
        with pytest.raises(AdlError):
            parse_adl(
                '<definition name="x">'
                '<component name="c" type="t"/>'
                '<component name="c" type="t"/></definition>'
            )

    def test_binding_to_unknown_component(self):
        with pytest.raises(AdlError):
            parse_adl(
                '<definition name="x"><component name="c" type="t"/>'
                '<binding client="c.a" server="ghost.b"/></definition>'
            )

    def test_binding_reference_format(self):
        with pytest.raises(AdlError):
            BindingSpec("no-dot", "c.itf")
        with pytest.raises(AdlError):
            BindingSpec("c.itf", "too.many.dots")

    def test_binding_missing_attributes(self):
        with pytest.raises(AdlError):
            parse_adl(
                '<definition name="x"><component name="c" type="t"/>'
                '<binding client="c.a"/></definition>'
            )

    def test_iter_specs_covers_nested(self):
        d = parse_adl(GOOD)
        assert sorted(s.name for s in d.iter_specs()) == ["apache", "tomcat", "web"]

    def test_spec_lookup_missing(self):
        with pytest.raises(AdlError):
            parse_adl(GOOD).spec("ghost")


class TestFactoryRegistry:
    def test_create_through_registry(self):
        registry = ComponentFactoryRegistry()
        registry.register("widget", lambda name, attrs, **ctx: Component(name))
        comp = registry.create("widget", "w1", {})
        assert comp.name == "w1"

    def test_unknown_type(self):
        with pytest.raises(AdlError):
            ComponentFactoryRegistry().create("ghost", "g", {})

    def test_duplicate_registration_rejected(self):
        registry = ComponentFactoryRegistry()
        registry.register("t", lambda *a, **k: Component("x"))
        with pytest.raises(ValueError):
            registry.register("t", lambda *a, **k: Component("y"))

    def test_known_types_sorted(self):
        registry = ComponentFactoryRegistry()
        registry.register("b", lambda *a, **k: None)
        registry.register("a", lambda *a, **k: None)
        assert registry.known_types() == ["a", "b"]

    def test_context_forwarded(self):
        seen = {}

        def factory(name, attrs, **ctx):
            seen.update(ctx)
            return Component(name)

        registry = ComponentFactoryRegistry()
        registry.register("t", factory)
        registry.create("t", "c", {}, node="N", kernel="K")
        assert seen == {"node": "N", "kernel": "K"}
