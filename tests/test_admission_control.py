"""Tests for the opt-in admission control (maxThreads / max_connections)."""



def drain(kernel):
    kernel.run()


class TestTomcatAdmission:
    def test_disabled_by_default(self, kernel, stack):
        assert stack.tomcat.admission_limit is None

    def test_limit_rejects_excess(self, kernel, stack):
        stack.tomcat.admission_limit = 2
        results = []
        for _ in range(5):
            req = stack.request(db=1.0)  # slow queries keep threads busy
            req.completion.add_callback(lambda s: results.append(s.error is None))
        kernel.run()
        assert results.count(False) == 3
        assert stack.tomcat.rejected == 3
        assert results.count(True) == 2

    def test_threads_release_after_completion(self, kernel, stack):
        stack.tomcat.admission_limit = 1
        first = stack.request()
        kernel.run()
        assert not first.failed
        second = stack.request()
        kernel.run()
        assert not second.failed

    def test_rejection_error_names_server(self, kernel, stack):
        stack.tomcat.admission_limit = 0
        req = stack.request()
        errors = []
        req.completion.add_callback(lambda s: errors.append(str(s.error)))
        kernel.run()
        assert "503" in errors[0]


class TestMySqlAdmission:
    def test_connection_limit_rejects_reads(self, kernel, stack):
        stack.mysql.admission_limit = 1
        sigs = [stack.mysql.execute_read(0.5) for _ in range(3)]
        outcomes = []
        for sig in sigs:
            sig.add_callback(lambda s: outcomes.append(s.error))
        kernel.run()
        refused = [e for e in outcomes if isinstance(e, ConnectionError)]
        assert len(refused) == 2
        assert stack.mysql.rejected == 2


class TestWrapperPlumbing:
    def test_enforce_limits_attribute(self, kernel, lan, directory):
        from repro.cluster import make_nodes
        from repro.wrappers import make_mysql_component, make_tomcat_component

        nodes = make_nodes(kernel, 2)
        kw = dict(kernel=kernel, directory=directory, lan=lan)
        mysql = make_mysql_component(
            "m", {"enforce_limits": "true", "max_connections": 7}, node=nodes[0], **kw
        )
        mysql.start()
        assert mysql.content.server.admission_limit == 7
        mysql.set_attr("enforce_limits", False)
        assert mysql.content.server.admission_limit is None

        tomcat = make_tomcat_component(
            "t", {"max_threads": 9}, node=nodes[1], **kw
        )
        tomcat.bind("jdbc", mysql.get_interface("jdbc"))
        tomcat.start()
        assert tomcat.content.server.admission_limit is None
        tomcat.set_attr("enforce_limits", True)
        assert tomcat.content.server.admission_limit == 9

    def test_limit_follows_attribute_update(self, kernel, lan, directory):
        from repro.cluster import make_nodes
        from repro.wrappers import make_mysql_component

        node = make_nodes(kernel, 1)[0]
        mysql = make_mysql_component(
            "m", {"enforce_limits": "true"},
            node=node, kernel=kernel, directory=directory, lan=lan,
        )
        mysql.start()
        mysql.set_attr("max_connections", 3)
        assert mysql.content.server.admission_limit == 3
