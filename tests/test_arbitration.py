"""Tests for the policy arbitration manager (§7 extension)."""

import pytest

from repro.jade.arbitration import ArbitrationManager


class TestArbitration:
    def test_grant_and_complete(self, kernel):
        arb = ArbitrationManager(kernel)
        assert arb.request("grow", "db")
        assert arb.active_operation("db").kind == "grow"
        arb.complete("grow", "db")
        assert arb.active_operation("db") is None

    def test_one_operation_per_tier(self, kernel):
        arb = ArbitrationManager(kernel)
        arb.request("grow", "db")
        assert not arb.request("grow", "db")
        assert not arb.request("shrink", "db")
        assert arb.denied[-1][1] == "shrink"

    def test_other_tier_unaffected(self, kernel):
        arb = ArbitrationManager(kernel)
        arb.request("grow", "db")
        assert arb.request("grow", "app")

    def test_repair_preempts_optimization(self, kernel):
        arb = ArbitrationManager(kernel)
        arb.request("shrink", "db")
        assert arb.request("repair", "db")

    def test_optimization_cannot_preempt_repair(self, kernel):
        arb = ArbitrationManager(kernel)
        arb.request("repair", "db")
        assert not arb.request("grow", "db")
        assert not arb.request("shrink", "db")

    def test_post_repair_cooldown_blocks_shrink(self, kernel):
        arb = ArbitrationManager(kernel, post_repair_cooldown_s=100.0)
        arb.request("repair", "db")
        arb.complete("repair", "db")
        assert not arb.request("shrink", "db")
        assert arb.request("grow", "db")  # growth is fine
        arb.complete("grow", "db")
        kernel.run(until=101.0)
        assert arb.request("shrink", "db")

    def test_unknown_kind_rejected(self, kernel):
        with pytest.raises(ValueError):
            ArbitrationManager(kernel).request("reboot", "db")

    def test_complete_mismatched_kind_ignored(self, kernel):
        arb = ArbitrationManager(kernel)
        arb.request("grow", "db")
        arb.complete("shrink", "db")  # wrong kind: no effect
        assert arb.active_operation("db") is not None

    def test_denied_log_records_reason(self, kernel):
        arb = ArbitrationManager(kernel)
        arb.request("grow", "db")
        arb.request("grow", "db")
        t, kind, tier, why = arb.denied[0]
        assert (kind, tier) == ("grow", "db")
        assert "active" in why
