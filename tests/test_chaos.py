"""Tests for the chaos subsystem: fault models, campaigns, the
phi-accrual detector and the resilience scorecard."""

import dataclasses
import pickle

import pytest

from repro.chaos import (
    PRESETS,
    ChaosCampaign,
    FaultSpec,
    PhiAccrualDetector,
    campaign_config,
    score_campaign,
    score_run,
    scorecard_json,
)
from repro.chaos import faults as F
from repro.cluster import Lan, make_nodes
from repro.cluster.failures import FailureInjector
from repro.cluster.node import NodeIsolated
from repro.jade.system import ManagedSystem
from repro.runner import CompletedRun, ExperimentRunner, ResultCache
from repro.simulation import CpuJob, FifoCpu, PsCpu


# ----------------------------------------------------------------------
# CPU degradation (the fail-slow / gray hook)
# ----------------------------------------------------------------------
class TestDegradation:
    def test_ps_mid_service_degrade_stretches_completion(self, kernel):
        cpu = PsCpu(kernel)
        job = CpuJob(kernel, 1.0)
        cpu.submit(job)
        # Half the demand is served by t=0.5; the rest at half speed
        # takes 1.0s more: completion at 1.5 instead of 1.0.
        kernel.schedule_at(0.5, cpu.set_degradation, 0.5)
        kernel.run()
        assert job.completed_at == pytest.approx(1.5)

    def test_ps_restore_mid_service(self, kernel):
        cpu = PsCpu(kernel)
        job = CpuJob(kernel, 1.0)
        cpu.submit(job)
        kernel.schedule_at(0.5, cpu.set_degradation, 0.5)
        kernel.schedule_at(1.0, cpu.set_degradation, 1.0)
        kernel.run()
        # [0,0.5] serves 0.5, [0.5,1.0] serves 0.25, remaining 0.25 at
        # full speed: completion at 1.25.
        assert job.completed_at == pytest.approx(1.25)

    def test_ps_degrade_shares_correctly(self, kernel):
        cpu = PsCpu(kernel)
        cpu.set_degradation(0.5)
        a, b = CpuJob(kernel, 1.0), CpuJob(kernel, 1.0)
        cpu.submit(a)
        cpu.submit(b)
        kernel.run()
        # Two equal jobs at half speed: each effectively served at 0.25/s.
        assert a.completed_at == pytest.approx(4.0)
        assert b.completed_at == pytest.approx(4.0)

    def test_fifo_degradation_scales_service(self, kernel):
        cpu = FifoCpu(kernel)
        cpu.set_degradation(0.25)
        job = CpuJob(kernel, 1.0)
        cpu.submit(job)
        kernel.run()
        assert job.completed_at == pytest.approx(4.0)

    def test_degradation_must_be_positive(self, kernel):
        cpu = PsCpu(kernel)
        with pytest.raises(ValueError):
            cpu.set_degradation(0.0)
        with pytest.raises(ValueError):
            cpu.set_degradation(-1.0)

    def test_node_degrade_and_restore(self, kernel):
        (node,) = make_nodes(kernel, 1)
        node.degrade(0.5)
        assert node.cpu.degradation == 0.5
        node.restore()
        assert node.cpu.degradation == 1.0

    def test_reboot_clears_degradation(self, kernel):
        (node,) = make_nodes(kernel, 1)
        node.degrade(0.1)
        node.crash()
        node.reboot()
        assert node.cpu.degradation == 1.0


# ----------------------------------------------------------------------
# Network partitions and node isolation
# ----------------------------------------------------------------------
class TestIsolation:
    def test_isolated_node_fails_jobs_async(self, kernel):
        (node,) = make_nodes(kernel, 1)
        node.isolate()
        assert node.isolated
        job = node.run_job(1.0)
        errors = []
        job.done.add_callback(lambda s: errors.append(s.error))
        kernel.run()
        assert isinstance(errors[0], NodeIsolated)

    def test_isolate_aborts_inflight_work(self, kernel):
        (node,) = make_nodes(kernel, 1)
        job = node.run_job(10.0)
        errors = []
        job.done.add_callback(lambda s: errors.append(s.error))
        kernel.schedule(1.0, node.isolate)
        kernel.run()
        assert isinstance(errors[0], NodeIsolated)

    def test_heal_restores_service(self, kernel):
        (node,) = make_nodes(kernel, 1)
        node.isolate()
        node.heal()
        assert not node.isolated
        job = node.run_job(1.0)
        kernel.run()
        assert job.completed_at == pytest.approx(1.0)

    def test_reboot_clears_isolation(self, kernel):
        (node,) = make_nodes(kernel, 1)
        node.isolate()
        node.crash()
        node.reboot()
        assert not node.isolated


class TestLanChaos:
    def test_extra_latency_applies_to_messages_and_transfers(self):
        lan = Lan(latency_s=0.001)
        base_msg = lan.message_delay(1.0)
        base_xfer = lan.transfer_time(1.0)
        lan.set_extra_latency(0.05)
        assert lan.message_delay(1.0) == pytest.approx(base_msg + 0.05)
        assert lan.transfer_time(1.0) == pytest.approx(base_xfer + 0.05)
        lan.set_extra_latency(0.0)
        assert lan.message_delay(1.0) == pytest.approx(base_msg)

    def test_extra_latency_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            Lan().set_extra_latency(-0.1)

    def test_partition_bookkeeping(self, kernel):
        a, b, c = make_nodes(kernel, 3)
        lan = Lan()
        lan.partition([a], [b])
        assert not lan.reachable(a, b)
        assert not lan.reachable(b, a)
        assert lan.reachable(a, c)  # c is in neither group
        assert lan.partitioned
        lan.heal()
        assert lan.reachable(a, b)
        assert not lan.partitioned

    def test_partition_groups_must_be_disjoint(self, kernel):
        a, b = make_nodes(kernel, 2)
        with pytest.raises(ValueError):
            Lan().partition([a, b], [b])


# ----------------------------------------------------------------------
# FailureInjector.stop() (one-shots must not outlive the injector)
# ----------------------------------------------------------------------
class TestFailureInjectorStop:
    def test_stop_cancels_pending_one_shots(self, kernel):
        nodes = make_nodes(kernel, 2)
        injector = FailureInjector(kernel)
        injector.crash_at(nodes[0], 100.0)
        injector.crash_after(nodes[1], 150.0)
        kernel.schedule_at(50.0, injector.stop)
        kernel.run(until=300.0)
        assert all(n.up for n in nodes)
        assert injector.crashes_injected == 0

    def test_stop_cancels_poisson_stream(self, kernel):
        nodes = make_nodes(kernel, 10)
        injector = FailureInjector(kernel)
        injector.poisson_crashes(nodes, mtbf_s=5.0)
        kernel.schedule_at(0.5, injector.stop)
        kernel.run(until=1000.0)
        assert injector.crashes_injected == 0

    def test_fired_one_shots_are_safe_to_stop(self, kernel):
        (node,) = make_nodes(kernel, 1)
        injector = FailureInjector(kernel)
        injector.crash_at(node, 10.0)
        kernel.run(until=50.0)
        assert not node.up
        injector.stop()  # cancelling a fired event is a no-op
        assert injector.crashes_injected == 1


# ----------------------------------------------------------------------
# Fault specs and campaigns (validation + picklability)
# ----------------------------------------------------------------------
class TestCampaignValues:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor")

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", target="cache")

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", at_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec("slow", duration_s=-1.0)

    def test_degradation_severity_positive(self):
        with pytest.raises(ValueError):
            FaultSpec("gray", severity=0.0)

    def test_poisson_needs_mtbf(self):
        with pytest.raises(ValueError):
            FaultSpec("poisson")

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError):
            ChaosCampaign("bad", detector="oracle")

    def test_faults_coerced_to_tuple(self):
        campaign = ChaosCampaign("c", faults=[F.crash(10.0)])
        assert isinstance(campaign.faults, tuple)

    def test_campaign_pickles(self):
        for factory in PRESETS.values():
            campaign = factory()
            clone = pickle.loads(pickle.dumps(campaign))
            assert clone == campaign

    def test_campaign_config_rides_the_cache_key(self):
        from repro.runner.cache import describe_config

        cfg_a = campaign_config(PRESETS["crash"](), seed=1)
        cfg_b = campaign_config(PRESETS["gray"](), seed=1)
        assert describe_config(cfg_a) != describe_config(cfg_b)


# ----------------------------------------------------------------------
# Phi-accrual detector (unit, against stub servers)
# ----------------------------------------------------------------------
class _StubCpu:
    def __init__(self):
        self.completed = 0
        self.active_jobs = 0


class _StubNode:
    def __init__(self):
        self.up = True
        self.cpu = _StubCpu()
        self.name = "stub-node"


class _StubServer:
    def __init__(self):
        self.name = "stub-server"
        self.running = True
        self.node = _StubNode()
        self.served = 0
        self.failures = 0
        self.pending = 0


def _watch(kernel, server, **kwargs):
    detector = PhiAccrualDetector(kernel, lambda: [server], **kwargs)
    suspicions = []
    detector.subscribe(lambda srv, phi, reason: suspicions.append((srv, phi, reason)))
    detector.on_start()
    return detector, suspicions


class TestPhiAccrualDetector:
    def test_stalled_server_is_suspected(self, kernel):
        server = _StubServer()
        detector, suspicions = _watch(kernel, server, threshold=4.0)

        def healthy():
            server.served += 1
            server.node.cpu.completed += 1

        for i in range(10):  # one completion per second until t=9.5
            kernel.schedule_at(i + 0.5, healthy)

        def stall():  # gray: work stuck on the node, nothing completes
            server.pending = 5
            server.node.cpu.active_jobs = 1

        kernel.schedule_at(10.0, stall)
        kernel.run(until=40.0)
        assert len(suspicions) == 1
        srv, phi, reason = suspicions[0]
        assert srv is server
        assert reason == "phi"
        assert phi >= 4.0

    def test_downstream_stall_is_not_suspected(self, kernel):
        # A healthy app server waiting on a broken database: requests
        # pile up, but its own CPU keeps completing slices.
        server = _StubServer()
        server.pending = 5
        server.node.cpu.active_jobs = 0
        _, suspicions = _watch(kernel, server, threshold=4.0)
        kernel.schedule_at(0.0, lambda: None)
        kernel.every(1.0, lambda: setattr(
            server.node.cpu, "completed", server.node.cpu.completed + 1
        ))
        kernel.run(until=60.0)
        assert suspicions == []

    def test_idle_server_is_not_suspected(self, kernel):
        server = _StubServer()  # pending == 0 throughout
        _, suspicions = _watch(kernel, server, threshold=4.0)
        kernel.schedule_at(100.0, lambda: None)  # keep the clock moving
        kernel.run(until=100.0)
        assert suspicions == []

    def test_failfast_catches_erroring_frozen_node(self, kernel):
        server = _StubServer()
        _, suspicions = _watch(kernel, server, failfast_ticks=3)

        def err():  # isolated node: errors advance, CPU frozen
            server.failures += 1
            server.pending = 2

        kernel.every(1.0, err)
        kernel.run(until=20.0)
        assert len(suspicions) == 1
        assert suspicions[0][2] == "fail-fast"

    def test_failfast_gated_by_local_cpu_progress(self, kernel):
        server = _StubServer()
        _, suspicions = _watch(kernel, server, failfast_ticks=3)

        def err_but_busy():  # relaying downstream errors, CPU alive
            server.failures += 1
            server.pending = 2
            server.node.cpu.completed += 1

        kernel.every(1.0, err_but_busy)
        kernel.run(until=20.0)
        assert suspicions == []

    def test_dead_server_left_to_heartbeat(self, kernel):
        server = _StubServer()
        server.pending = 5
        server.node.cpu.active_jobs = 1
        detector, suspicions = _watch(kernel, server, threshold=4.0)
        kernel.schedule_at(5.0, lambda: setattr(server.node, "up", False))
        kernel.run(until=60.0)
        assert suspicions == []
        assert detector.suspicions == 0

    def test_stop_halts_checks(self, kernel):
        server = _StubServer()
        detector, suspicions = _watch(kernel, server, threshold=4.0)
        assert detector.running
        detector.on_stop()
        assert not detector.running
        server.pending = 5
        server.node.cpu.active_jobs = 1
        kernel.schedule_at(100.0, lambda: None)
        kernel.run(until=100.0)
        assert suspicions == []


# ----------------------------------------------------------------------
# End-to-end campaigns (acceptance)
# ----------------------------------------------------------------------
def _run_campaign(campaign, seed=1, clients=60, duration_s=420.0):
    cfg = campaign_config(campaign, seed=seed, clients=clients,
                          duration_s=duration_s)
    system = ManagedSystem(cfg)
    system.run()
    return CompletedRun.from_system(system, 0.0)


class TestCampaignsEndToEnd:
    def test_crash_campaign_is_repaired(self):
        run = _run_campaign(PRESETS["crash"]())
        assert run.chaos is not None
        assert run.chaos.faults_injected == 1
        assert run.chaos.repairs_started == 1
        card = score_run(run)
        assert card["repairs_completed"] == 1
        assert card["unrepaired"] == 0
        assert 0.0 < card["mttr_mean_s"] < 60.0
        assert 0.0 < card["availability"] <= 1.0

    def test_gray_failure_legacy_misses_phi_catches(self):
        gray = PRESETS["gray"]()
        legacy = _run_campaign(dataclasses.replace(gray, detector="legacy"))
        phi = _run_campaign(gray)
        # The legacy up-flag heartbeat never notices the crawling node.
        assert legacy.chaos.repairs_started == 0
        assert legacy.chaos.detections == []
        # The phi-accrual detector suspects it and triggers the repair.
        assert phi.chaos.repairs_started >= 1
        assert phi.chaos.detections[0]["tier"] == "database"
        assert phi.chaos.detections[0]["reason"].startswith("detector:")
        # Recovering the replica restores goodput.
        assert (
            score_run(phi)["goodput_rps"] > score_run(legacy)["goodput_rps"]
        )

    def test_partition_campaign_detected_by_failfast(self):
        run = _run_campaign(PRESETS["partition"]())
        assert run.chaos.repairs_started >= 1
        assert any(
            d["reason"] == "detector:fail-fast" for d in run.chaos.detections
        )

    def test_correlated_campaign_crashes_a_rack(self):
        run = _run_campaign(PRESETS["correlated"]())
        assert run.chaos.faults_injected >= 2  # both tiers share rack 1%3
        card = score_run(run)
        assert card["repairs_completed"] == card["disruptions"]

    def test_scorecard_identical_serial_parallel_cached(self, tmp_path):
        campaign = PRESETS["crash"]()
        seeds = (1, 2)

        def make(seed):
            return campaign_config(campaign, seed=seed, clients=60,
                                   duration_s=420.0)

        def card(runner):
            runs = runner.run_seeds(make, seeds)
            return scorecard_json(
                score_campaign(campaign, [runs[s] for s in seeds])
            )

        serial = card(ExperimentRunner(parallel=False, cache=None))
        cache = ResultCache(tmp_path / "cache")
        parallel = card(ExperimentRunner(parallel=True, cache=cache))
        assert cache.misses == len(seeds)
        warm_cache = ResultCache(tmp_path / "cache")
        cached = card(ExperimentRunner(parallel=True, cache=warm_cache))
        assert warm_cache.hits == len(seeds)
        assert serial == parallel
        assert serial == cached

    def test_scorecard_aggregates_with_ci(self):
        campaign = PRESETS["crash"]()
        runs = [_run_campaign(campaign, seed=s) for s in (1, 2)]
        card = score_campaign(campaign, runs)
        assert card["seeds"] == [1, 2]
        agg = card["aggregate"]["mttr_mean_s"]
        assert agg["n"] == 2
        assert agg["mean"] > 0
        assert agg["ci95"] >= 0
        # Canonical JSON round-trips (NaN-free, stable key order).
        import json

        assert json.loads(scorecard_json(card))["campaign"] == "crash"

    def test_chaos_stats_survive_pickling(self):
        run = _run_campaign(PRESETS["crash"]())
        clone = pickle.loads(pickle.dumps(run))
        assert clone.chaos.faults_injected == run.chaos.faults_injected
        assert scorecard_json(
            score_campaign(PRESETS["crash"](), [clone])
        ) == scorecard_json(score_campaign(PRESETS["crash"](), [run]))
