"""Stateful property test of the C-JDBC replication protocol.

Hypothesis drives random interleavings of the operations the management
layer can perform on the clustered database — writes, reads, backend
attach (with recovery-log sync), clean detach, crash, time passing — and
checks the protocol's core invariants after every step:

* every ENABLED backend that has no in-flight work has applied a *prefix*
  of the recovery log;
* whenever the system is quiescent, all ENABLED backends hold identical
  state digests (full mirroring);
* a detached backend's checkpoint never exceeds the log's length.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.cluster import Lan, Node
from repro.legacy import CJdbcController, Directory, MySqlServer, WebRequest
from repro.legacy.configfiles import CjdbcBackend, CjdbcXml, MyCnf
from repro.simulation import SimKernel


class CJdbcMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.kernel = SimKernel()
        self.lan = Lan()
        self.directory = Directory()
        self.next_node = 0
        self.servers: dict[str, MySqlServer] = {}
        first = self._new_mysql("mysql0")
        cj_node = self._new_node()
        cj_node.fs.write(
            CJdbcController.CONFIG_PATH,
            CjdbcXml(
                backends=[CjdbcBackend("mysql0", first.node.name, 3306)]
            ).render(),
        )
        self.cjdbc = CJdbcController(
            self.kernel, "cjdbc", cj_node, self.directory, self.lan
        )
        self.cjdbc.start()
        self.detached: list[str] = []

    # ------------------------------------------------------------------
    def _new_node(self) -> Node:
        self.next_node += 1
        return Node(self.kernel, f"n{self.next_node}")

    def _new_mysql(self, name: str) -> MySqlServer:
        node = self._new_node()
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        server = MySqlServer(self.kernel, name, node, self.directory, self.lan)
        server.start()
        self.servers[name] = server
        return server

    # ------------------------------------------------------------------
    @rule(n=st.integers(min_value=1, max_value=5))
    def write(self, n):
        for _ in range(n):
            req = WebRequest(self.kernel, "w", is_write=True, db_demand=0.005)
            self.cjdbc.execute(req)

    @rule()
    def read(self):
        if self.cjdbc.enabled_backends():
            req = WebRequest(self.kernel, "r", db_demand=0.004)
            self.cjdbc.execute(req)

    @rule()
    def settle(self):
        """Let all in-flight work (including syncs) complete."""
        self.kernel.run()

    @rule(dt=st.floats(min_value=0.001, max_value=0.2))
    def advance(self, dt):
        self.kernel.run(until=self.kernel.now + dt)

    @precondition(lambda self: len(self.cjdbc.backends()) < 4)
    @rule()
    def attach_new(self):
        name = f"mysql{len(self.servers)}"
        server = self._new_mysql(name)
        self.cjdbc.attach_backend(name, server)

    @precondition(lambda self: self.detached)
    @rule()
    def reattach(self):
        name = self.detached.pop()
        server = self.servers[name]
        if server.running and name not in [b.name for b in self.cjdbc.backends()]:
            self.cjdbc.attach_backend(name, server)

    @precondition(lambda self: len(self.cjdbc.enabled_backends()) > 1)
    @rule()
    def detach(self):
        handle = self.cjdbc.enabled_backends()[-1]
        self.cjdbc.detach_backend(handle.name)
        self.detached.append(handle.name)

    @precondition(lambda self: len(self.cjdbc.enabled_backends()) > 1)
    @rule()
    def crash_backend(self):
        handle = self.cjdbc.enabled_backends()[-1]
        handle.server.node.crash()
        self.cjdbc.drop_backend(handle.name)

    # ------------------------------------------------------------------
    @invariant()
    def checkpoints_within_log(self):
        log = self.cjdbc.log
        for name in self.detached:
            cp = log.checkpoint(name)
            assert cp is None or 0 <= cp <= log.next_index

    @invariant()
    def applied_indexes_bounded(self):
        for backend in self.cjdbc.backends():
            assert backend.server.applied_index <= self.cjdbc.log.next_index

    @invariant()
    def quiescent_backends_identical(self):
        # Only meaningful when nothing is in flight.
        if self.kernel.pending:
            return
        enabled = self.cjdbc.enabled_backends()
        caught_up = [
            b for b in enabled if b.server.applied_index == self.cjdbc.log.next_index
        ]
        digests = {b.server.state_digest for b in caught_up}
        assert len(digests) <= 1

    def teardown(self):
        self.kernel.run()
        enabled = self.cjdbc.enabled_backends()
        if enabled:
            digests = {b.server.state_digest for b in enabled}
            assert len(digests) == 1
            for b in enabled:
                assert b.server.applied_index == self.cjdbc.log.next_index


TestCJdbcStateful = CJdbcMachine.TestCase
TestCJdbcStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
