"""Tests for the command-line interface."""

import csv
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_ramp_defaults(self):
        args = build_parser().parse_args(["ramp"])
        assert args.command == "ramp"
        assert args.peak == 500
        assert not args.static

    def test_steady_options(self):
        args = build_parser().parse_args(
            ["steady", "--clients", "40", "--duration", "100", "--no-jade"]
        )
        assert args.clients == 40
        assert args.no_jade

    def test_recovery_options(self):
        args = build_parser().parse_args(["recovery", "--crash-at", "120"])
        assert args.crash_at == 120.0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_options(self):
        args = build_parser().parse_args(
            ["trace", "out.jsonl", "--all", "--tail", "25"]
        )
        assert args.file == "out.jsonl"
        assert args.all
        assert args.tail == 25

    def test_proactive_flags(self):
        assert build_parser().parse_args(["ramp", "--proactive"]).proactive
        assert not build_parser().parse_args(["ramp"]).proactive
        assert build_parser().parse_args(["steady", "--proactive"]).proactive

    def test_whatif_options(self):
        args = build_parser().parse_args(
            ["whatif", "--at", "250", "--horizon", "90", "--warmup", "45",
             "--model", "ewma", "--max-delta", "2", "--seed", "5",
             "--report", "out.json"]
        )
        assert args.command == "whatif"
        assert args.at == 250.0
        assert args.horizon == 90.0
        assert args.warmup == 45.0
        assert args.model == "ewma"
        assert args.max_delta == 2
        assert args.seed == 5
        assert args.report == "out.json"

    def test_whatif_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["whatif", "--model", "oracle"])


class TestCommands:
    def test_steady_runs_and_prints_summary(self, capsys):
        assert main(["steady", "--clients", "20", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "peak replicas" in out

    def test_steady_no_jade(self, capsys):
        assert main(["steady", "--clients", "10", "--duration", "30", "--no-jade"]) == 0
        assert "managed=False" in capsys.readouterr().out

    def test_ramp_compressed(self, capsys):
        assert main(["ramp", "--scale", "0.05", "--peak", "200"]) == 0
        out = capsys.readouterr().out
        assert "Summary" in out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "series.csv"
        assert (
            main(["steady", "--clients", "15", "--duration", "60", "--csv", str(path)])
            == 0
        )
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["series", "t_s", "value"]
        series = {r[0] for r in rows[1:]}
        assert "latency_s" in series
        assert "clients" in series
        assert any(s.startswith("cpu[") for s in series)

    def test_trace_flag_then_render(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["steady", "--clients", "150", "--duration", "120",
             "--trace", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Decision trace:" in out
        assert str(path) in out
        assert path.exists()

        assert main(["trace", str(path)]) == 0
        rendered = capsys.readouterr().out
        assert "run=run-seed1" in rendered
        assert "kernel-stats" in rendered
        # Probe readings are hidden unless --all is passed.
        assert "probe-reading" not in rendered
        assert main(["trace", str(path), "--all", "--tail", "5"]) == 0
        rendered = capsys.readouterr().out
        assert "kernel-stats" in rendered

    def test_recovery_scenario(self, capsys):
        assert main(["recovery", "--clients", "30", "--crash-at", "100",
                     "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "digests identical: True" in out
        assert "detected failure" in out
        assert "MTTR" in out
        assert "detection latency" in out
        assert "availability" in out

    def test_recovery_csv_carries_mttr(self, tmp_path, capsys):
        path = tmp_path / "rec.csv"
        assert main(["recovery", "--clients", "30", "--crash-at", "100",
                     "--scale", "0.5", "--csv", str(path)]) == 0
        with open(tmp_path / "rec.json") as fh:
            report = json.load(fh)
        rec = report["recovery"]
        assert rec["crash_at_s"] == 100.0
        assert rec["mttr_s"] > 0
        assert 0.0 < rec["availability"] <= 1.0

    def test_chaos_options(self):
        args = build_parser().parse_args(
            ["chaos", "--campaign", "gray", "--detector", "legacy",
             "--seeds", "4,5", "--clients", "50", "--duration", "300",
             "--slo", "0.3", "--serial", "--no-cache", "--events",
             "--json", "card.json"]
        )
        assert args.command == "chaos"
        assert args.campaign == "gray"
        assert args.detector == "legacy"
        assert args.seeds == "4,5"
        assert args.slo == 0.3
        assert args.events
        assert args.json == "card.json"

    def test_chaos_rejects_unknown_campaign(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--campaign", "meteor"])

    def test_chaos_campaign_prints_scorecard(self, tmp_path, capsys):
        card_path = tmp_path / "card.json"
        assert main(
            ["chaos", "--campaign", "crash", "--seeds", "1", "--clients",
             "40", "--duration", "300", "--serial", "--no-cache",
             "--events", "--json", str(card_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Campaign 'crash'" in out
        assert "MTTR" in out
        assert "availability" in out
        assert "inject crash" in out
        with open(card_path) as fh:
            card = json.load(fh)
        assert card["campaign"] == "crash"
        assert card["per_seed"][0]["repairs_completed"] == 1

    def test_csv_export_records_seed(self, tmp_path, capsys):
        path = tmp_path / "series.csv"
        assert main(
            ["steady", "--clients", "15", "--duration", "60",
             "--seed", "17", "--csv", str(path)]
        ) == 0
        with open(tmp_path / "series.json") as fh:
            report = json.load(fh)
        assert report["seed"] == 17

    def test_steady_proactive_prints_counters(self, capsys):
        assert main(
            ["steady", "--clients", "20", "--duration", "60", "--proactive"]
        ) == 0
        out = capsys.readouterr().out
        assert "Proactive manager:" in out
        assert "forecasts" in out

    def test_whatif_runs_and_reports(self, tmp_path, capsys):
        report_path = tmp_path / "whatif.json"
        assert main(
            ["whatif", "--at", "100", "--scale", "0.15", "--peak", "200",
             "--horizon", "40", "--warmup", "30", "--seed", "4",
             "--report", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "fork point t=100s" in out.lower() or "Fork:" in out
        assert "<- best" in out
        with open(report_path) as fh:
            outcomes = json.load(fh)
        assert isinstance(outcomes, list) and outcomes
        labels = {o["candidate"] for o in outcomes}
        assert any(label.startswith("app") for label in labels)
        assert all("cost" in o for o in outcomes if o["feasible"])


class TestScalingAndBenchFlags:
    def test_ramp_cohort_scales_profile(self):
        args = build_parser().parse_args(
            ["ramp", "--peak", "100000", "--cohort", "200"]
        )
        assert args.cohort == 200
        assert args.hardware_scale is None  # defaults to the cohort size

    def test_steady_cohort_flags(self):
        args = build_parser().parse_args(
            ["steady", "--cohort", "50", "--hardware-scale", "25"]
        )
        assert args.cohort == 50
        assert args.hardware_scale == 25.0

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.seeds == 3
        assert args.tolerance == 0.25
        assert not args.micro_only

    def test_bench_check_mode(self):
        args = build_parser().parse_args(
            ["bench", "--check", "BENCH_engine.json", "--tolerance", "0.4"]
        )
        assert args.check == "BENCH_engine.json"
        assert args.tolerance == 0.4

    def test_bench_micro_only_runs(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--micro-only", "--rounds", "1", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert "kernel_10k_events" in report["micro"]
        assert "ramp" not in report
        assert "whatif" not in report

    def test_bench_whatif_flags(self):
        args = build_parser().parse_args(
            ["bench", "--check-whatif", "BENCH_engine.json",
             "--whatif-candidates", "4"]
        )
        assert args.check_whatif == "BENCH_engine.json"
        assert args.whatif_candidates == 4
        assert build_parser().parse_args(["bench"]).check_whatif is None

    def test_whatif_parallel_flags(self):
        args = build_parser().parse_args(
            ["whatif", "--serial", "--no-cache", "--prune", "--workers", "3"]
        )
        assert args.serial and args.no_cache and args.prune
        assert args.workers == 3
        defaults = build_parser().parse_args(["whatif"])
        assert not defaults.serial and not defaults.no_cache
        assert not defaults.prune and defaults.workers is None

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--seeds", "1,2,3", "--scales", "0.05,0.1",
             "--policies", "managed,proactive", "--cohorts", "1,4",
             "--peak", "200", "--csv", "out.csv", "--json", "out.json",
             "--serial", "--no-cache", "--workers", "2"]
        )
        assert args.command == "sweep"
        assert args.seeds == "1,2,3"
        assert args.policies == "managed,proactive"
        assert args.peak == 200
        assert args.serial and args.no_cache and args.workers == 2

    def test_cache_flags(self):
        args = build_parser().parse_args(["cache", "stats", "--dir", "/tmp/c"])
        assert args.command == "cache"
        assert args.action == "stats"
        assert args.dir == "/tmp/c"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "bogus"])


class TestCacheCommand:
    def test_stats_clear_round_trip(self, tmp_path, monkeypatch, capsys):
        from repro.runner.cache import ResultCache

        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        ResultCache().store("a" * 64, {"payload": 1})

        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries   : 1" in out
        assert str(cache_dir) in out

        assert main(["cache", "prune"]) == 0
        assert "evicted 0" in capsys.readouterr().out  # under the cap

        assert main(["cache", "clear"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "entries   : 0" in capsys.readouterr().out

    def test_dir_flag_overrides_env(self, tmp_path, capsys):
        target = tmp_path / "explicit"
        from repro.runner.cache import ResultCache

        ResultCache(target).store("b" * 64, {"payload": 2})
        assert main(["cache", "stats", "--dir", str(target)]) == 0
        assert "entries   : 1" in capsys.readouterr().out
