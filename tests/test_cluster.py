"""Unit tests for the cluster substrate: nodes, filesystem, allocator,
installer, LAN, failure injection."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterManager,
    FailureInjector,
    FileNotFound,
    Lan,
    NoFreeNodeError,
    Node,
    NodeDown,
    NodeFilesystem,
    Package,
    SoftwareInstallationService,
    make_nodes,
)


class TestFilesystem:
    def test_write_read_roundtrip(self):
        fs = NodeFilesystem()
        fs.write("/etc/app.conf", "key=value\n")
        assert fs.read("/etc/app.conf") == "key=value\n"

    def test_read_missing_raises(self):
        with pytest.raises(FileNotFound):
            NodeFilesystem().read("/nope")

    def test_overwrite(self):
        fs = NodeFilesystem()
        fs.write("/a", "1")
        fs.write("/a", "2")
        assert fs.read("/a") == "2"

    def test_exists_and_delete(self):
        fs = NodeFilesystem()
        fs.write("/a", "x")
        assert fs.exists("/a")
        fs.delete("/a")
        assert not fs.exists("/a")
        with pytest.raises(FileNotFound):
            fs.delete("/a")

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            NodeFilesystem().write("etc/app.conf", "x")

    def test_path_normalization(self):
        fs = NodeFilesystem()
        fs.write("//etc///app.conf", "x")
        assert fs.read("/etc/app.conf") == "x"

    def test_listdir(self):
        fs = NodeFilesystem()
        fs.write("/opt/pkg/a", "1")
        fs.write("/opt/pkg/sub/b", "2")
        fs.write("/etc/other", "3")
        assert fs.listdir("/opt/pkg") == ["/opt/pkg/a", "/opt/pkg/sub/b"]

    def test_remove_tree(self):
        fs = NodeFilesystem()
        fs.write("/opt/pkg/a", "1")
        fs.write("/opt/pkg/b", "2")
        fs.write("/etc/keep", "3")
        assert fs.remove_tree("/opt/pkg") == 2
        assert len(fs) == 1


class TestNode:
    def test_run_job_consumes_cpu(self, kernel):
        node = Node(kernel, "n1")
        job = node.run_job(2.0)
        kernel.run()
        assert job.completed_at == pytest.approx(2.0)

    def test_run_job_on_down_node_raises(self, kernel):
        node = Node(kernel, "n1")
        node.crash()
        with pytest.raises(NodeDown):
            node.run_job(1.0)

    def test_memory_baseline(self, kernel):
        node = Node(kernel, "n1", memory_mb=1000.0, base_os_mb=100.0)
        assert node.memory_used_mb() == pytest.approx(100.0)
        assert node.memory_utilization() == pytest.approx(0.1)

    def test_memory_footprints(self, kernel):
        node = Node(kernel, "n1", memory_mb=1000.0, base_os_mb=100.0)
        node.register_footprint("srv:db", 80.0)
        node.register_footprint("jade", 20.0)
        assert node.memory_used_mb() == pytest.approx(200.0)
        node.unregister_footprint("jade")
        assert node.memory_used_mb() == pytest.approx(180.0)

    def test_memory_includes_active_jobs(self, kernel):
        node = Node(kernel, "n1", memory_mb=1000.0, base_os_mb=0.0, per_job_mb=10.0)
        node.run_job(5.0)
        node.run_job(5.0)
        assert node.memory_used_mb() == pytest.approx(20.0)

    def test_memory_capped_at_total(self, kernel):
        node = Node(kernel, "n1", memory_mb=100.0, base_os_mb=90.0)
        node.register_footprint("big", 500.0)
        assert node.memory_used_mb() == 100.0

    def test_negative_footprint_rejected(self, kernel):
        node = Node(kernel, "n1")
        with pytest.raises(ValueError):
            node.register_footprint("x", -1.0)

    def test_crash_aborts_jobs_and_notifies(self, kernel):
        node = Node(kernel, "n1")
        job = node.run_job(10.0)
        errors = []
        job.done.add_callback(lambda s: errors.append(s.error))
        crashed = []
        node.on_crash(crashed.append)
        kernel.schedule(1.0, node.crash)
        kernel.run()
        assert isinstance(errors[0], NodeDown)
        assert crashed == [node]

    def test_crash_idempotent(self, kernel):
        node = Node(kernel, "n1")
        hits = []
        node.on_crash(hits.append)
        node.crash()
        node.crash()
        assert len(hits) == 1

    def test_reboot_resets_state(self, kernel):
        node = Node(kernel, "n1")
        node.fs.write("/etc/x", "data")
        node.register_footprint("srv", 10.0)
        node.crash()
        node.reboot()
        assert node.up
        assert not node.fs.exists("/etc/x")
        assert node.footprints == {}

    def test_utilization_sampling(self, kernel):
        node = Node(kernel, "n1")
        node.run_job(1.0)
        kernel.run(until=2.0)
        # busy 1s out of 2s
        assert node.cpu_utilization_since_last_sample() == pytest.approx(0.5)
        kernel.run(until=4.0)
        assert node.cpu_utilization_since_last_sample() == pytest.approx(0.0)

    def test_make_nodes_names(self, kernel):
        nodes = make_nodes(kernel, 3, prefix="srv")
        assert [n.name for n in nodes] == ["srv1", "srv2", "srv3"]


class TestClusterManager:
    def test_allocate_release_cycle(self, kernel):
        nodes = make_nodes(kernel, 3)
        cm = ClusterManager(nodes)
        n = cm.allocate("tier:db")
        assert cm.free_count == 2
        assert cm.owner_of(n) == "tier:db"
        cm.release(n)
        assert cm.free_count == 3
        assert cm.owner_of(n) is None

    def test_allocation_is_fifo(self, kernel):
        nodes = make_nodes(kernel, 3)
        cm = ClusterManager(nodes)
        assert cm.allocate("a").name == "node1"
        assert cm.allocate("b").name == "node2"

    def test_released_node_goes_to_back_of_pool(self, kernel):
        nodes = make_nodes(kernel, 2)
        cm = ClusterManager(nodes)
        first = cm.allocate("a")
        cm.release(first)
        assert cm.allocate("b").name == "node2"

    def test_exhaustion_raises(self, kernel):
        cm = ClusterManager(make_nodes(kernel, 1))
        cm.allocate("a")
        with pytest.raises(NoFreeNodeError):
            cm.allocate("b")

    def test_predicate_filters(self, kernel):
        nodes = make_nodes(kernel, 3)
        cm = ClusterManager(nodes)
        n = cm.allocate("a", predicate=lambda n: n.name == "node3")
        assert n.name == "node3"

    def test_crashed_nodes_not_allocated(self, kernel):
        nodes = make_nodes(kernel, 2)
        nodes[0].crash()
        cm = ClusterManager(nodes)
        assert cm.allocate("a").name == "node2"
        with pytest.raises(NoFreeNodeError):
            cm.allocate("b")

    def test_double_release_rejected(self, kernel):
        cm = ClusterManager(make_nodes(kernel, 1))
        n = cm.allocate("a")
        cm.release(n)
        with pytest.raises(ValueError):
            cm.release(n)

    def test_discard_removes_node(self, kernel):
        nodes = make_nodes(kernel, 2)
        cm = ClusterManager(nodes)
        n = cm.allocate("a")
        cm.discard(n)
        assert cm.allocated_count == 0
        assert cm.free_count == 1

    def test_duplicate_names_rejected(self, kernel):
        a = Node(kernel, "same")
        b = Node(kernel, "same")
        with pytest.raises(ValueError):
            ClusterManager([a, b])

    def test_counters(self, kernel):
        cm = ClusterManager(make_nodes(kernel, 2))
        n = cm.allocate("a")
        cm.release(n)
        cm.allocate("b")
        assert cm.allocations_total == 2
        assert cm.releases_total == 1

    def test_predicate_mismatch_reports_pool_state(self, kernel):
        # A non-matching predicate over a non-empty pool must say so:
        # the free count and the predicate's presence belong in the error.
        cm = ClusterManager(make_nodes(kernel, 3))
        cm.allocate("held")
        with pytest.raises(NoFreeNodeError) as exc:
            cm.allocate("tier:db", predicate=lambda n: n.name == "nope")
        message = str(exc.value)
        assert "'tier:db'" in message
        assert "free=2" in message
        assert "allocated=1" in message
        assert "predicate=yes" in message

    def test_exhaustion_message_without_predicate(self, kernel):
        cm = ClusterManager(make_nodes(kernel, 1))
        cm.allocate("a")
        with pytest.raises(NoFreeNodeError) as exc:
            cm.allocate("b")
        message = str(exc.value)
        assert "free=0" in message
        assert "predicate=no" in message

    def test_release_of_unallocated_node_rejected(self, kernel):
        nodes = make_nodes(kernel, 2)
        cm = ClusterManager(nodes)
        # never allocated: releasing it is a caller bug, not a no-op
        with pytest.raises(ValueError):
            cm.release(nodes[1])

    def test_fifo_stable_after_interleaved_churn(self, kernel):
        nodes = make_nodes(kernel, 4)
        cm = ClusterManager(nodes)
        a = cm.allocate("a")  # node1
        b = cm.allocate("b")  # node2
        cm.release(a)         # free: node3, node4, node1
        c = cm.allocate("c")  # node3
        cm.release(b)         # free: node4, node1, node2
        cm.release(c)         # free: node4, node1, node2, node3
        order = [cm.allocate(f"x{i}").name for i in range(4)]
        assert order == ["node4", "node1", "node2", "node3"]

    def test_node_seconds_by_owner(self, kernel):
        nodes = make_nodes(kernel, 3)
        cm = ClusterManager(nodes)
        n = cm.allocate("tier:app")
        kernel.run(until=10.0)
        cm.release(n)
        m = cm.allocate("tier:db")
        kernel.run(until=25.0)
        held = cm.node_seconds_by_owner()
        assert held["tier:app"] == pytest.approx(10.0)
        # still allocated: accrues up to "now"
        assert held["tier:db"] == pytest.approx(15.0)

    def test_node_seconds_accumulates_per_owner(self, kernel):
        nodes = make_nodes(kernel, 2)
        cm = ClusterManager(nodes)
        first = cm.allocate("tier:app")
        kernel.run(until=5.0)
        cm.release(first)
        second = cm.allocate("tier:app")
        kernel.run(until=8.0)
        cm.discard(second)
        assert cm.node_seconds_by_owner()["tier:app"] == pytest.approx(8.0)

    def test_add_node_joins_pool(self, kernel):
        cm = ClusterManager(make_nodes(kernel, 1))
        late = Node(kernel, "late1")
        cm.add_node(late)
        assert cm.free_count == 2
        cm.allocate("a")
        assert cm.allocate("b") is late

    def test_add_node_duplicate_name_rejected(self, kernel):
        nodes = make_nodes(kernel, 1)
        cm = ClusterManager(nodes)
        with pytest.raises(ValueError):
            cm.add_node(Node(kernel, "node1"))


class TestInstaller:
    def make(self, kernel):
        svc = SoftwareInstallationService(kernel, Lan())
        svc.register(
            Package(
                "tomcat",
                "3.3.2",
                size_mb=10.0,
                setup_time_s=2.0,
                files={"bin/catalina.sh": "#!/bin/sh\n"},
                footprint_mb=24.0,
            )
        )
        return svc

    def test_install_writes_files_and_footprint(self, kernel):
        svc = self.make(kernel)
        node = Node(kernel, "n1")
        done = []
        svc.install("tomcat", node).add_callback(lambda s: done.append(s.value))
        kernel.run()
        assert done and done[0].name == "tomcat"
        assert node.fs.exists("/opt/tomcat-3.3.2/.installed")
        assert node.fs.read("/opt/tomcat-3.3.2/bin/catalina.sh").startswith("#!")
        assert node.footprints["pkg:tomcat"] == 24.0
        assert svc.is_installed("tomcat", node)

    def test_install_takes_time(self, kernel):
        svc = self.make(kernel)
        node = Node(kernel, "n1")
        when = []
        svc.install("tomcat", node).add_callback(lambda s: when.append(kernel.now))
        kernel.run()
        # setup 2 s + transfer of 10 MB over 100 Mbps = 0.8 s
        assert when[0] == pytest.approx(2.8, abs=0.05)

    def test_reinstall_skips_transfer(self, kernel):
        svc = self.make(kernel)
        node = Node(kernel, "n1")
        svc.install("tomcat", node)
        kernel.run()
        start = kernel.now
        when = []
        svc.install("tomcat", node).add_callback(lambda s: when.append(kernel.now))
        kernel.run()
        assert when[0] - start == pytest.approx(2.0, abs=0.01)

    def test_install_unknown_package(self, kernel):
        svc = self.make(kernel)
        node = Node(kernel, "n1")
        from repro.cluster.installer import PackageNotFound

        with pytest.raises(PackageNotFound):
            svc.install("nope", node)

    def test_install_on_down_node_fails_signal(self, kernel):
        svc = self.make(kernel)
        node = Node(kernel, "n1")
        node.crash()
        errors = []
        svc.install("tomcat", node).add_callback(lambda s: errors.append(s.error))
        kernel.run()
        assert isinstance(errors[0], NodeDown)

    def test_node_crash_during_install_fails(self, kernel):
        svc = self.make(kernel)
        node = Node(kernel, "n1")
        errors = []
        svc.install("tomcat", node).add_callback(lambda s: errors.append(s.error))
        kernel.schedule(1.0, node.crash)
        kernel.run()
        assert isinstance(errors[0], NodeDown)

    def test_uninstall(self, kernel):
        svc = self.make(kernel)
        node = Node(kernel, "n1")
        svc.install("tomcat", node)
        kernel.run()
        svc.uninstall("tomcat", node)
        assert not svc.is_installed("tomcat", node)
        assert not node.fs.exists("/opt/tomcat-3.3.2/.installed")
        assert "pkg:tomcat" not in node.footprints


class TestLan:
    def test_message_delay_positive(self):
        lan = Lan(latency_s=0.001, bandwidth_mbps=100.0)
        assert lan.message_delay(1.0) > 0.001

    def test_transfer_time_scales_with_size(self):
        lan = Lan(bandwidth_mbps=100.0)
        assert lan.transfer_time(100.0) == pytest.approx(8.0, rel=0.01)

    def test_counters(self):
        lan = Lan()
        lan.message_delay(2.0)
        lan.message_delay(2.0)
        assert lan.messages_total == 2
        assert lan.bytes_total == pytest.approx(2 * 2 * 1024)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            Lan(latency_s=-1)
        with pytest.raises(ValueError):
            Lan(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            Lan().message_delay(-1.0)


class TestFailureInjector:
    def test_crash_at(self, kernel):
        node = Node(kernel, "n1")
        inj = FailureInjector(kernel)
        inj.crash_at(node, 5.0)
        kernel.run(until=4.0)
        assert node.up
        kernel.run(until=6.0)
        assert not node.up
        assert inj.crashes_injected == 1

    def test_crash_after(self, kernel):
        node = Node(kernel, "n1")
        FailureInjector(kernel).crash_after(node, 2.0)
        kernel.run()
        assert not node.up

    def test_poisson_crashes_hit_mean(self, kernel):
        rng = np.random.default_rng(42)
        nodes = make_nodes(kernel, 200)
        inj = FailureInjector(kernel, rng)
        inj.poisson_crashes(nodes, mtbf_s=100.0)
        kernel.run(until=1000.0)
        # Expect ~10 crashes (1000 s / 100 s MTBF); loose bounds.
        assert 3 <= inj.crashes_injected <= 25

    def test_victim_filter(self, kernel):
        rng = np.random.default_rng(1)
        nodes = make_nodes(kernel, 5)
        protected = nodes[0]
        inj = FailureInjector(kernel, rng)
        inj.poisson_crashes(
            nodes, mtbf_s=5.0, victim_filter=lambda n: n is not protected
        )
        kernel.run(until=200.0)
        assert protected.up
        assert inj.crashes_injected > 0

    def test_stop_cancels(self, kernel):
        rng = np.random.default_rng(1)
        nodes = make_nodes(kernel, 5)
        inj = FailureInjector(kernel, rng)
        inj.poisson_crashes(nodes, mtbf_s=1.0)
        inj.stop()
        kernel.run(until=100.0)
        assert inj.crashes_injected == 0

    def test_bad_mtbf_rejected(self, kernel):
        inj = FailureInjector(kernel)
        with pytest.raises(ValueError):
            inj.poisson_crashes([], mtbf_s=0.0)
