"""Aggregated client cohorts.

A :class:`ClientCohort` of weight K stands for K identical closed-loop
browsers: per cycle one think draw, one request whose demands are the sum
over the K constituents (Gamma additivity), and counters weighted by K.
The tests pin the two load-bearing properties:

* **K = 1 identity** — a weight-1 cohort consumes the RNG streams exactly
  like the original per-client session, so the default configuration is
  bit-for-bit unchanged;
* **weak scaling** — a population of N·K clients emulated as N cohorts on
  K×-scaled hardware reproduces the unscaled N-client run's utilization
  and (weighted) completion counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.metrics.collector import MetricsCollector
from repro.simulation.kernel import SimKernel
from repro.simulation.rng import RngStreams
from repro.workload.clients import ClientEmulator
from repro.workload.cohort import ClientCohort
from repro.workload.profiles import ConstantProfile
from repro.workload.rubis import RubisModel


@pytest.fixture
def kernel():
    return SimKernel()


class CountingEntry:
    """Entry point that completes every request after a fixed delay."""

    def __init__(self, kernel, delay=0.05):
        self.kernel = kernel
        self.count = 0
        self.weight_sum = 0
        self.delay = delay

    def __call__(self, request):
        self.count += 1
        self.weight_sum += request.weight
        self.kernel.schedule(self.delay, request.complete, self.kernel)


def make_emulator(kernel, profile, cohort=1, seed=3):
    entry = CountingEntry(kernel)
    collector = MetricsCollector()
    emulator = ClientEmulator(
        kernel,
        entry=entry,
        profile=profile,
        collector=collector,
        streams=RngStreams(seed),
        cohort=cohort,
    )
    return emulator, entry, collector


# ----------------------------------------------------------------------
# Construction and population accounting
# ----------------------------------------------------------------------
class TestCohortBasics:
    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            ClientCohort(0, 0)
        with pytest.raises(ValueError):
            ClientCohort(0, -3)

    def test_emulator_rejects_bad_cohort(self, kernel):
        with pytest.raises(ValueError):
            make_emulator(kernel, ConstantProfile(10, 60.0), cohort=0)

    def test_active_clients_counts_constituents(self, kernel):
        emulator, _, _ = make_emulator(
            kernel, ConstantProfile(100, 60.0), cohort=10
        )
        emulator.start()
        kernel.run(until=10.0)
        assert emulator.active_clients == 100
        # 10 cohort processes, not 100.
        assert len([c for c in emulator._clients if c.active]) == 10

    def test_partial_cohort_covers_deficit_exactly(self, kernel):
        """A population that does not divide by the cohort size is covered
        exactly on the way up (the last cohort is smaller)."""
        emulator, _, _ = make_emulator(
            kernel, ConstantProfile(25, 60.0), cohort=10
        )
        emulator.start()
        kernel.run(until=10.0)
        assert emulator.active_clients == 25
        weights = sorted(c.weight for c in emulator._clients if c.active)
        assert weights == [5, 10, 10]

    def test_requests_carry_cohort_weight(self, kernel):
        emulator, entry, collector = make_emulator(
            kernel, ConstantProfile(40, 120.0), cohort=8
        )
        emulator.start()
        kernel.run(until=120.0)
        assert entry.count > 0
        assert entry.weight_sum == 8 * entry.count
        assert collector.completed_requests == entry.weight_sum
        assert emulator.requests_issued == entry.weight_sum

    def test_throughput_counts_constituents(self, kernel):
        """X = N / (Z + R) holds for the *constituent* population even
        though only N/K samples are recorded."""
        emulator, _, collector = make_emulator(
            kernel, ConstantProfile(50, 600.0), cohort=10
        )
        emulator.start()
        kernel.run(until=600.0)
        assert collector.throughput(100.0, 600.0) == pytest.approx(
            50 / 6.55, rel=0.1
        )


# ----------------------------------------------------------------------
# K = 1 identity
# ----------------------------------------------------------------------
class TestUnitCohortIdentity:
    def test_vary_weight_one_is_rng_identical(self):
        a = RubisModel(np.random.default_rng(42))
        b = RubisModel(np.random.default_rng(42))
        for mean in (0.01, 0.03, 0.002):
            assert a._vary(mean) == b._vary(mean, 1)

    def test_cohort_one_emulator_matches_default(self, kernel):
        """cohort=1 takes the same code path as the default configuration:
        identical request streams, latencies, and counters."""
        emulator, entry, collector = make_emulator(
            kernel, ConstantProfile(20, 200.0), cohort=1
        )
        emulator.start()
        kernel.run(until=200.0)

        k2 = SimKernel()
        default, entry2, col2 = make_emulator(k2, ConstantProfile(20, 200.0))
        default.start()
        k2.run(until=200.0)

        assert entry.count == entry2.count
        assert collector.completed_requests == col2.completed_requests
        assert np.array_equal(collector.latencies.times, col2.latencies.times)
        assert np.array_equal(collector.latencies.values, col2.latencies.values)

    def test_full_system_cohort_one_identical(self):
        """End-to-end: a managed run with cohort=1/hardware_scale=1 equals
        the default config exactly (same seeds, same draws, same events)."""
        profile = ConstantProfile(30, 120.0)
        runs = []
        for cfg in (
            ExperimentConfig(profile=profile, seed=5, tail_s=10.0),
            ExperimentConfig(
                profile=profile, seed=5, tail_s=10.0, cohort=1, hardware_scale=1.0
            ),
        ):
            system = ManagedSystem(cfg)
            system.run()
            runs.append(system)
        a, b = runs
        assert a.kernel.events_processed == b.kernel.events_processed
        assert np.array_equal(
            a.collector.latencies.values, b.collector.latencies.values
        )
        assert a.summary() == b.summary()


# ----------------------------------------------------------------------
# Weak scaling: N·K clients as N cohorts on K×-scaled hardware
# ----------------------------------------------------------------------
def _weak_scaled_pair(k, clients=20, duration=200.0, seed=3):
    profile_up = ConstantProfile(clients * k, duration)
    scaled = ManagedSystem(
        ExperimentConfig(
            profile=profile_up,
            seed=seed,
            cohort=k,
            hardware_scale=float(k),
            tail_s=20.0,
        )
    )
    scaled.run()
    base = ManagedSystem(
        ExperimentConfig(
            profile=ConstantProfile(clients, duration), seed=seed, tail_s=20.0
        )
    )
    base.run()
    return scaled, base


@pytest.mark.parametrize("k", [10, 100])
def test_weak_scaling_matches_unscaled_run(k):
    """Tier CPU utilization and weighted completions of the cohort run
    track the unscaled run within tolerance."""
    scaled, base = _weak_scaled_pair(k)
    s, b = scaled.summary(), base.summary()
    assert s["completed"] == pytest.approx(k * b["completed"], rel=0.02)
    assert s["throughput_rps"] == pytest.approx(k * b["throughput_rps"], rel=0.02)
    assert s["node_cpu_mean"] == pytest.approx(b["node_cpu_mean"], rel=0.15)
    assert s["latency_mean_ms"] == pytest.approx(b["latency_mean_ms"], rel=0.25)
    for tier in ("application", "database"):
        sc = scaled.collector.tier_cpu.get(tier)
        bc = base.collector.tier_cpu.get(tier)
        if sc is None or bc is None or not len(sc.values) or not len(bc.values):
            continue
        assert float(sc.values.mean()) == pytest.approx(
            float(bc.values.mean()), abs=0.05
        )


# ----------------------------------------------------------------------
# Gamma additivity of the demand model
# ----------------------------------------------------------------------
@given(
    weight=st.integers(min_value=1, max_value=200),
    mean=st.floats(min_value=0.001, max_value=0.1),
)
@settings(max_examples=25, deadline=None)
def test_vary_weight_scales_mean(weight, mean):
    """A weight-w draw is Gamma(w·shape, mean/shape): its expectation is
    w·mean and its CV shrinks as 1/sqrt(w) — the statistical fan-in that
    lets one draw stand for w clients."""
    model = RubisModel(np.random.default_rng(7))
    n = 800
    draws = np.array([model._vary(mean, weight) for _ in range(n)])
    assert np.all(draws > 0)
    expected = weight * mean
    # CV of the sample mean: 0.5 / sqrt(weight) / sqrt(n); allow 6 sigma.
    tol = 6 * 0.5 / np.sqrt(weight * n)
    assert abs(draws.mean() / expected - 1.0) < max(tol, 0.01)
