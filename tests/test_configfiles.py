"""Unit + property tests for the legacy configuration-file formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.legacy.configfiles import (
    CjdbcBackend,
    CjdbcXml,
    ConfigError,
    HttpdConf,
    MyCnf,
    PlbConf,
    ServerXml,
    Worker,
    WorkerProperties,
)

hostnames = st.from_regex(r"[a-z][a-z0-9]{0,10}", fullmatch=True)
ports = st.integers(min_value=1, max_value=65535)


class TestHttpdConf:
    def test_roundtrip(self):
        conf = HttpdConf(listen=8080, server_name="web1", max_clients=50)
        assert HttpdConf.parse(conf.render()) == conf

    def test_parse_ignores_comments_and_blanks(self):
        text = "# comment\n\nListen 81\n"
        assert HttpdConf.parse(text).listen == 81

    def test_unknown_directive_rejected(self):
        with pytest.raises(ConfigError):
            HttpdConf.parse("Bogus value\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigError):
            HttpdConf.parse("Listen\n")

    @given(port=ports, clients=st.integers(1, 10_000), host=hostnames)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, port, clients, host):
        conf = HttpdConf(listen=port, max_clients=clients, server_name=host)
        assert HttpdConf.parse(conf.render()) == conf


class TestWorkerProperties:
    def test_roundtrip(self):
        wp = WorkerProperties(
            [Worker("w1", "node2", 8098), Worker("w2", "node3", 8098, lbfactor=50)]
        )
        assert WorkerProperties.parse(wp.render()) == wp

    def test_renders_paper_format(self):
        wp = WorkerProperties([Worker("worker", "node3", 8098)])
        text = wp.render()
        # The exact directives quoted in the paper's §5.1.
        assert "worker.worker.port=8098" in text
        assert "worker.worker.host=node3" in text
        assert "worker.worker.type=ajp13" in text
        assert "worker.loadbalancer.type=lb" in text
        assert "worker.loadbalancer.balanced_workers=worker" in text

    def test_empty_worker_list(self):
        wp = WorkerProperties([])
        assert WorkerProperties.parse(wp.render()) == wp

    def test_add_remove_worker(self):
        wp = WorkerProperties()
        wp.add_worker(Worker("a", "h", 1))
        with pytest.raises(ConfigError):
            wp.add_worker(Worker("a", "h", 2))
        wp.remove_worker("a")
        with pytest.raises(KeyError):
            wp.remove_worker("a")

    def test_worker_lookup(self):
        wp = WorkerProperties([Worker("a", "h", 1)])
        assert wp.worker("a").port == 1
        with pytest.raises(KeyError):
            wp.worker("b")

    def test_balanced_worker_without_definition_rejected(self):
        text = "worker.loadbalancer.type=lb\nworker.loadbalancer.balanced_workers=ghost\n"
        with pytest.raises(ConfigError):
            WorkerProperties.parse(text)

    def test_worker_missing_property_rejected(self):
        text = (
            "worker.w.host=h\n"
            "worker.loadbalancer.type=lb\n"
            "worker.loadbalancer.balanced_workers=w\n"
        )
        with pytest.raises(ConfigError):
            WorkerProperties.parse(text)

    def test_malformed_key_rejected(self):
        with pytest.raises(ConfigError):
            WorkerProperties.parse("notworker.a.b=c\n")
        with pytest.raises(ConfigError):
            WorkerProperties.parse("just a line\n")

    @given(
        entries=st.lists(
            st.tuples(hostnames, ports, st.integers(1, 100)),
            min_size=0,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, entries):
        workers = [
            Worker(f"w{i}", host, port, lbfactor=lb)
            for i, (host, port, lb) in enumerate(entries)
        ]
        wp = WorkerProperties(workers)
        assert WorkerProperties.parse(wp.render()) == wp


class TestServerXml:
    def test_roundtrip(self):
        conf = ServerXml(
            http_port=8081,
            ajp_port=8010,
            datasource_url="jdbc:cjdbc://db-lb:25322/rubis",
            max_threads=99,
        )
        assert ServerXml.parse(conf.render()) == conf

    def test_bad_xml_rejected(self):
        with pytest.raises(ConfigError):
            ServerXml.parse("<Server><Connector></Server>")

    @given(http=ports, ajp=ports, threads=st.integers(1, 1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, http, ajp, threads):
        conf = ServerXml(http_port=http, ajp_port=ajp, max_threads=threads)
        assert ServerXml.parse(conf.render()) == conf


class TestMyCnf:
    def test_roundtrip(self):
        conf = MyCnf(port=3307, datadir="/data", max_connections=55)
        assert MyCnf.parse(conf.render()) == conf

    def test_other_sections_ignored(self):
        text = "[client]\nport=1\n[mysqld]\nport=3308\n"
        assert MyCnf.parse(text).port == 3308

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigError):
            MyCnf.parse("[mysqld]\nport\n")

    @given(port=ports, conns=st.integers(1, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, port, conns):
        conf = MyCnf(port=port, max_connections=conns)
        assert MyCnf.parse(conf.render()) == conf


class TestCjdbcXml:
    def test_roundtrip(self):
        conf = CjdbcXml(
            vdb_name="rubis",
            port=25000,
            policy="RoundRobin",
            backends=[CjdbcBackend("b1", "node4", 3306), CjdbcBackend("b2", "node5", 3306)],
        )
        assert CjdbcXml.parse(conf.render()) == conf

    def test_missing_vdb_rejected(self):
        with pytest.raises(ConfigError):
            CjdbcXml.parse("<C-JDBC></C-JDBC>")

    def test_incomplete_backend_rejected(self):
        text = (
            '<C-JDBC><VirtualDatabase name="r" port="1">'
            '<RAIDb-1 loadBalancer="x"><DatabaseBackend name="b"/></RAIDb-1>'
            "</VirtualDatabase></C-JDBC>"
        )
        with pytest.raises(ConfigError):
            CjdbcXml.parse(text)

    @given(
        backends=st.lists(st.tuples(hostnames, ports), min_size=0, max_size=4),
        port=ports,
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, backends, port):
        conf = CjdbcXml(
            port=port,
            backends=[
                CjdbcBackend(f"b{i}", host, p) for i, (host, p) in enumerate(backends)
            ],
        )
        assert CjdbcXml.parse(conf.render()) == conf


class TestPlbConf:
    def test_roundtrip(self):
        conf = PlbConf(listen=9000, servers=[("n1", 8080), ("n2", 8080)], policy="random")
        assert PlbConf.parse(conf.render()) == conf

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ConfigError):
            PlbConf.parse("bogus 1\n")

    def test_bad_server_spec_rejected(self):
        with pytest.raises(ConfigError):
            PlbConf.parse("server no-port\n")

    def test_comments_ignored(self):
        conf = PlbConf.parse("# hello\nlisten 9000\npolicy roundrobin\n")
        assert conf.listen == 9000

    @given(servers=st.lists(st.tuples(hostnames, ports), max_size=5), listen=ports)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, servers, listen):
        conf = PlbConf(listen=listen, servers=servers)
        assert PlbConf.parse(conf.render()) == conf
