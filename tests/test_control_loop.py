"""Tests for control-loop assembly: the managers really are components."""

import pytest

from repro.fractal import architecture_report, iter_components, verify_architecture
from repro.jade.control_loop import ControlLoop, InhibitionLock
from repro.jade.reactors import ThresholdReactor
from repro.jade.sensors import CpuProbe
from repro.cluster import make_nodes


class FakeTier:
    def __init__(self, nodes):
        self._nodes = nodes
        self.replica_count = 1
        self.calls = []
        self.on_reconfigured = []

    def active_nodes(self):
        return self._nodes

    def nodes(self):
        return self._nodes

    def grow(self):
        self.calls.append("grow")
        self.replica_count += 1
        for cb in self.on_reconfigured:
            cb()
        return True

    def shrink(self):
        self.calls.append("shrink")
        self.replica_count -= 1
        return True


@pytest.fixture
def loop(kernel):
    nodes = make_nodes(kernel, 1)
    tier = FakeTier(nodes)
    probe = CpuProbe(kernel, tier.active_nodes, window_s=5.0)
    reactor = ThresholdReactor(
        kernel,
        tier,
        InhibitionLock(kernel, 10.0),
        warmup_samples=0,
        fresh_samples_required=3,
    )
    return ControlLoop.build(kernel, "loop-test", probe, reactor, tier), tier, nodes


class TestAssembly:
    def test_composite_structure(self, loop):
        control_loop, tier, _ = loop
        names = [c.name for c in iter_components(control_loop.composite)]
        assert names == [
            "loop-test",
            "loop-test-sensor",
            "loop-test-reactor",
            "loop-test-actuator",
        ]
        assert verify_architecture(control_loop.composite) == []

    def test_bindings_visible_in_report(self, loop):
        control_loop, *_ = loop
        report = architecture_report(control_loop.composite)
        assert "notify -> loop-test-reactor.readings" in report
        assert "actuate -> loop-test-actuator.resize" in report

    def test_loop_closes_through_components(self, loop, kernel):
        """Saturate the node: the decision must flow sensor -> reactor ->
        actuator entirely through component interfaces."""
        control_loop, tier, nodes = loop
        control_loop.start()
        nodes[0].run_job(1e9)
        kernel.run(until=10.0)
        assert "grow" in tier.calls

    def test_stopped_loop_is_inert(self, loop, kernel):
        control_loop, tier, nodes = loop
        control_loop.start()
        control_loop.stop()
        nodes[0].run_job(1e9)
        kernel.run(until=10.0)
        assert tier.calls == []
        assert not control_loop.running

    def test_reconfiguration_resets_probe_window(self, loop, kernel):
        control_loop, tier, nodes = loop
        control_loop.start()
        nodes[0].run_job(1e9)
        kernel.run(until=10.0)
        assert tier.calls == ["grow"]
        # grow() fired on_reconfigured -> the window must have been reset
        # and refilled with at most the samples taken since.
        assert control_loop.probe.window.sample_count <= 10

    def test_actuation_through_interface_invocation(self, loop):
        control_loop, tier, _ = loop
        # The reactor's tier handle is the adapter, not the raw tier.
        assert control_loop.reactor.tier is not tier
        assert control_loop.reactor.tier.replica_count == tier.replica_count
        control_loop.reactor.tier.grow()
        assert tier.calls == ["grow"]
