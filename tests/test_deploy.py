"""Tests for the deploy subsystem: versioned configurations, bounce
strategies, canary analysis with SLO-gated rollback, scorecard
determinism — plus regressions for the hardening sweep (per-node MTTR
pairing, availability NaN, export collisions, RollingRebind edges)."""

import dataclasses
import pickle
from types import SimpleNamespace

import pytest

from repro.deploy import (
    PRESETS,
    STRATEGIES,
    DeployScenario,
    ServerVersion,
    apply_version,
    clear_version,
    deploy_config,
    score_run,
    score_scenario,
    scorecard_json,
    version_label,
    with_strategy,
)
from repro.deploy.canary import CanaryController
from repro.jade.rolling import RollingRebind, rolling_rebind
from repro.jade.system import ManagedSystem
from repro.runner import CompletedRun, ExperimentRunner, ResultCache
from repro.simulation.process import Process
from repro.workload.profiles import PiecewiseProfile


# ----------------------------------------------------------------------
# Versioned server configurations
# ----------------------------------------------------------------------
class TestServerVersion:
    def test_is_a_pure_value(self):
        v = ServerVersion("v2", demand_factor=4.0, error_rate=0.3)
        assert pickle.loads(pickle.dumps(v)) == v

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerVersion("")
        with pytest.raises(ValueError):
            ServerVersion("v2", demand_factor=0.0)
        with pytest.raises(ValueError):
            ServerVersion("v2", error_rate=1.0)

    def test_version_label_of_baseline_is_none(self):
        assert version_label(None) is None
        assert version_label(ServerVersion("v3")) == "v3"

    def test_error_rate_requires_rng(self):
        record = _fake_record()
        with pytest.raises(ValueError, match="no rng"):
            apply_version(record, ServerVersion("bad", error_rate=0.5))

    def test_apply_and_clear_roundtrip(self):
        record = _fake_record()
        rng = SimpleNamespace(random=lambda: 0.5)
        apply_version(
            record, ServerVersion("bad", demand_factor=2.0, error_rate=0.5),
            rng=rng,
        )
        server = record.component.content.server
        assert record.node.factor == 0.5
        assert server.version_label == "bad"
        assert server.fault_rate == 0.5
        assert server.fault_rng() == 0.5
        clear_version(record)
        assert record.version is None
        assert record.node.restored
        assert server.version_label is None
        assert server.fault_rate == 0.0
        assert server.fault_rng is None


def _fake_record():
    node = SimpleNamespace(factor=None, restored=False)
    node.degrade = lambda f: setattr(node, "factor", f)
    node.restore = lambda: setattr(node, "restored", True)
    server = SimpleNamespace(
        version_label=None, fault_rate=0.0, fault_rng=None
    )
    return SimpleNamespace(
        node=node,
        component=SimpleNamespace(content=SimpleNamespace(server=server)),
        version=None,
    )


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
class TestScenario:
    def test_validation(self):
        v = ServerVersion("v2")
        with pytest.raises(ValueError):
            DeployScenario("x", v, strategy="yolo")
        with pytest.raises(ValueError):
            DeployScenario("x", v, fleet=1)
        with pytest.raises(ValueError):
            DeployScenario("x", v, canary_replicas=3)  # >= fleet
        with pytest.raises(ValueError):
            DeployScenario("x", v, start_at_s=0.0)
        with pytest.raises(TypeError):
            DeployScenario("x", "v2")

    def test_presets_build_and_pickle(self):
        for name, factory in PRESETS.items():
            scenario = factory()
            assert scenario.name == name
            assert scenario.strategy in STRATEGIES
            assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_with_strategy(self):
        sc = with_strategy(PRESETS["clean-bounce"](), "brutal")
        assert sc.strategy == "brutal"
        assert sc.name == "clean-bounce"

    def test_flash_crowd_wires_a_spike(self):
        cfg = deploy_config(PRESETS["flash-crowd"](), clients=100)
        assert isinstance(cfg.profile, PiecewiseProfile)
        assert max(c for _t, c in cfg.profile._pts) == 200

    def test_crash_mid_bounce_wires_chaos_and_recovery(self):
        cfg = deploy_config(PRESETS["crash-mid-bounce"]())
        assert cfg.chaos is not None
        assert cfg.recovery
        assert cfg.chaos.faults[0].target == "db"

    def test_config_is_cacheable(self, tmp_path):
        from repro.runner import describe_config

        cfg = deploy_config(PRESETS["bad-push"](), seed=3)
        a = describe_config(cfg)
        b = describe_config(deploy_config(PRESETS["bad-push"](), seed=3))
        assert a == b
        assert a != describe_config(deploy_config(PRESETS["clean-push"](), seed=3))


# ----------------------------------------------------------------------
# Bounce strategies (live systems, shortened timeline)
# ----------------------------------------------------------------------
def _run_live(scenario, clients=60, duration_s=130.0, start_at_s=40.0):
    scenario = dataclasses.replace(scenario, start_at_s=start_at_s)
    cfg = deploy_config(scenario, seed=1, clients=clients, duration_s=duration_s)
    system = ManagedSystem(cfg)
    system.run()
    return system


def _capacity_between(manager, t0, t1):
    serving = [s for t, s, _n in manager.capacity if t0 <= t <= t1]
    return serving


class TestBounceStrategies:
    def test_crossover_never_dips_below_fleet(self):
        system = _run_live(PRESETS["clean-bounce"]())
        manager = system.deploy
        assert manager.verdict == "promoted"
        dips = _capacity_between(
            manager, manager.started_t, manager.completed_t
        )
        assert dips and min(dips) >= manager.scenario.fleet
        assert all(
            version_label(r.version) == "v2"
            for r in system.app_tier.replicas
        )

    def test_upthendown_only_grows(self):
        system = _run_live(
            with_strategy(PRESETS["clean-bounce"](), "upthendown")
        )
        manager = system.deploy
        assert manager.verdict == "promoted"
        dips = _capacity_between(
            manager, manager.started_t, manager.completed_t
        )
        assert dips and min(dips) >= manager.scenario.fleet

    def test_downthenup_dips_by_exactly_one(self):
        system = _run_live(
            with_strategy(PRESETS["clean-bounce"](), "downthenup")
        )
        manager = system.deploy
        assert manager.verdict == "promoted"
        dips = _capacity_between(
            manager, manager.started_t, manager.completed_t
        )
        assert min(dips) == manager.scenario.fleet - 1

    def test_brutal_blacks_out(self):
        system = _run_live(
            with_strategy(PRESETS["clean-bounce"](), "brutal")
        )
        manager = system.deploy
        assert manager.verdict == "promoted"
        dips = _capacity_between(
            manager, manager.started_t, manager.completed_t
        )
        assert min(dips) == 0
        # The blackout fails requests fast rather than queueing them.
        assert system.collector.failed_requests > 0
        assert all(
            version_label(r.version) == "v2"
            for r in system.app_tier.replicas
        )

    def test_quarantine_is_lifted_after_the_bounce(self):
        system = _run_live(PRESETS["clean-bounce"]())
        assert system.app_tier.maintenance == set()


# ----------------------------------------------------------------------
# Canary analysis and rollback
# ----------------------------------------------------------------------
class TestCanary:
    def test_clean_push_promotes(self):
        system = _run_live(PRESETS["clean-push"](), duration_s=180.0)
        manager = system.deploy
        assert manager.verdict == "promoted"
        assert manager.verdict_reason == "slo-ok"
        kinds = [e["kind"] for e in manager.events]
        assert kinds == ["deploy-started", "canary-verdict", "deploy-completed"]
        assert all(
            version_label(r.version) == "v2"
            for r in system.app_tier.replicas
        )

    def test_bad_push_rolls_back(self):
        system = _run_live(PRESETS["bad-push"](), duration_s=180.0)
        manager = system.deploy
        assert manager.verdict == "rolled-back"
        assert manager.verdict_reason == "error-delta"
        kinds = [e["kind"] for e in manager.events]
        assert kinds == [
            "deploy-started",
            "canary-verdict",
            "rollback-triggered",
            "deploy-completed",
        ]
        m = manager.canary_metrics
        assert m["canary_error_rate"] > m["stable_error_rate"] + 0.05
        # Rolled back: every replica is on the stable baseline again.
        for record in system.app_tier.replicas:
            assert record.version is None
            server = record.component.content.server
            assert server.fault_rate == 0.0
            assert server.version_label is None

    def test_rollback_never_touches_the_stable_fleet(self):
        system = _run_live(PRESETS["bad-push"](), duration_s=180.0)
        manager = system.deploy
        # Only the canary cohort was ever bounced: one out, one back.
        dips = _capacity_between(
            manager, manager.started_t, manager.completed_t
        )
        assert min(dips) >= manager.scenario.fleet - manager.scenario.canary_replicas

    def test_no_canary_traffic_fails_safe(self, kernel):
        scenario = dataclasses.replace(PRESETS["clean-push"](), window_s=5.0)
        tier = SimpleNamespace(replicas=[])
        controller = CanaryController(kernel, tier, scenario)
        result = {}

        def drive():
            verdict = yield from controller.measure()
            result.update(verdict)

        Process(kernel, drive(), name="drive")
        kernel.run()
        assert result["promoted"] is False
        assert result["reason"] == "no-canary-traffic"

    def test_deploy_events_are_traced(self):
        from repro.obs.events import EVENT_KINDS

        for kind in ("deploy-started", "canary-verdict", "rollback-triggered"):
            assert kind in EVENT_KINDS


# ----------------------------------------------------------------------
# Scorecard + determinism
# ----------------------------------------------------------------------
class TestScorecard:
    def test_score_run_requires_a_deploy(self):
        run = SimpleNamespace(deploy=None)
        with pytest.raises(ValueError):
            score_run(run)

    def test_scorecard_identical_serial_parallel_cached(self, tmp_path):
        scenario = dataclasses.replace(PRESETS["bad-push"](), start_at_s=60.0)
        seeds = (1, 2)

        def make(seed):
            return deploy_config(scenario, seed=seed, clients=60,
                                 duration_s=330.0)

        def card(runner):
            runs = runner.run_seeds(make, seeds)
            return scorecard_json(
                score_scenario(scenario, [runs[s] for s in seeds])
            )

        serial = card(ExperimentRunner(parallel=False, cache=None))
        cache = ResultCache(tmp_path / "cache")
        parallel = card(ExperimentRunner(parallel=True, cache=cache))
        assert cache.misses == len(seeds)
        warm_cache = ResultCache(tmp_path / "cache")
        cached = card(ExperimentRunner(parallel=True, cache=warm_cache))
        assert warm_cache.hits == len(seeds)
        assert serial == parallel
        assert serial == cached

    def test_deploy_stats_survive_the_run(self):
        scenario = dataclasses.replace(PRESETS["bad-push"](), start_at_s=40.0)
        cfg = deploy_config(scenario, seed=1, clients=60, duration_s=300.0)
        system = ManagedSystem(cfg)
        system.run()
        run = CompletedRun.from_system(system, 0.0)
        assert run.deploy.verdict == "rolled-back"
        card = score_run(run)
        assert card["rollback_latency_s"] == card["deploy_duration_s"]
        assert abs(card["goodput_ratio"] - 1.0) <= 0.10
        assert card["blackout_s"] == 0.0


# ----------------------------------------------------------------------
# Hardening-sweep regressions
# ----------------------------------------------------------------------
class TestChaosScorecardPairing:
    """Concurrent faults on different nodes must pair with *their own*
    repairs, and repairs must pair FIFO within a tier."""

    def _collector(self, lines):
        return SimpleNamespace(reconfigurations=lines)

    def test_repairs_pair_per_node(self):
        from repro.chaos.scorecard import _match, _repairs_by_node

        col = self._collector([
            (10.0, "[database] repair: db-1 failed on n1"),
            (12.0, "[database] repair: db-2 failed on n2"),
            (20.0, "[database] grow: db-3 active on n9"),
            (31.0, "[database] grow: db-4 active on n8"),
        ])
        repairs = _repairs_by_node(col)["database"]
        # FIFO within the tier: first start takes the first completion.
        assert repairs == [(10.0, "n1", 20.0), (12.0, "n2", 31.0)]
        used: set[int] = set()
        # The fault on n2 must match its own repair, not n1's earlier one.
        assert _match(12.0, "n2", repairs, used) == 31.0
        assert _match(10.0, "n1", repairs, used) == 20.0
        assert _match(10.0, "n3", repairs, used) is None

    def test_availability_is_nan_when_nothing_attempted(self):
        from repro.chaos.scorecard import score_run as chaos_score_run
        from repro.metrics.collector import MetricsCollector

        run = SimpleNamespace(
            chaos=SimpleNamespace(
                events=[], detections=[], faults_injected=0
            ),
            collector=MetricsCollector(),
            config=SimpleNamespace(
                seed=1, profile=SimpleNamespace(duration_s=10.0)
            ),
        )
        card = chaos_score_run(run)
        assert card["availability"] != card["availability"]  # NaN


class TestExportCollision:
    def test_extra_must_not_overwrite_core_keys(self):
        from repro.metrics.collector import MetricsCollector
        from repro.metrics.export import to_json_dict

        collector = MetricsCollector()
        report = to_json_dict(collector, 10.0)
        existing = sorted(report)[0]
        with pytest.raises(ValueError, match="overwrite"):
            to_json_dict(collector, 10.0, extra={existing: "clobber"})

    def test_disjoint_extra_merges(self):
        from repro.metrics.collector import MetricsCollector
        from repro.metrics.export import to_json_dict

        report = to_json_dict(
            MetricsCollector(), 10.0, extra={"recovery": {"mttr": 1.0}}
        )
        assert report["recovery"] == {"mttr": 1.0}


class TestRollingRebindEdges:
    def _build_web(self, kernel, lan, directory, n_apaches=3):
        from repro.cluster import make_nodes
        from repro.wrappers import make_apache_component, make_tomcat_component

        nodes = make_nodes(kernel, n_apaches + 2, prefix="w")
        kw = dict(kernel=kernel, directory=directory, lan=lan)
        tomcat_old = make_tomcat_component("t-old", node=nodes[-2], **kw)
        tomcat_new = make_tomcat_component("t-new", node=nodes[-1], **kw)
        apaches = []
        for i in range(n_apaches):
            apache = make_apache_component(f"a{i}", node=nodes[i], **kw)
            apache.bind("ajp", tomcat_old.get_interface("ajp"))
            apache.start()
            apaches.append(apache)
        return apaches, tomcat_old, tomcat_new

    def test_stopped_frontend_is_rebound_but_never_started(
        self, kernel, lan, directory
    ):
        apaches, _old, new = self._build_web(kernel, lan, directory)
        apaches[1].stop()  # deliberately down (e.g. quarantined)
        op = rolling_rebind(
            kernel, apaches, "ajp", [new.get_interface("ajp")]
        )
        kernel.run()
        assert op.done.fired
        assert op.restarted == 2
        assert not apaches[1].lifecycle_controller.is_started()
        bound = apaches[1].binding_controller.bound_servers("ajp")
        assert [s.component.name for s in bound] == ["t-new"]
        for apache in (apaches[0], apaches[2]):
            assert apache.lifecycle_controller.is_started()

    def test_abort_mid_restart_restores_the_frontend(
        self, kernel, lan, directory
    ):
        apaches, _old, new = self._build_web(kernel, lan, directory)
        op = RollingRebind(
            kernel, apaches, "ajp", [new.get_interface("ajp")]
        ).start()
        # Apache startup is 1.5 s: at t=0.5 the first frontend is down,
        # mid restart-wait.  Abort there.
        kernel.run(until=0.5)
        assert not apaches[0].lifecycle_controller.is_started()
        op.process.kill()
        # The finally clause must leave it started and bound.
        assert apaches[0].lifecycle_controller.is_started()
        assert apaches[0].binding_controller.bound_instances("ajp")
        # The untouched frontends were never stopped.
        assert apaches[1].lifecycle_controller.is_started()
        assert apaches[2].lifecycle_controller.is_started()

    def test_run_hook_applies_while_stopped(self, kernel, lan, directory):
        apaches, _old, new = self._build_web(kernel, lan, directory, n_apaches=1)
        states = []
        RollingRebind(
            kernel,
            apaches,
            "ajp",
            [new.get_interface("ajp")],
            on_stopped=lambda c: states.append(
                c.lifecycle_controller.is_started()
            ),
        ).start()
        kernel.run()
        assert states == [False]
        assert apaches[0].lifecycle_controller.is_started()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestDeployCli:
    def test_deploy_command_reports_rollback(self, capsys):
        from repro.cli import main

        rc = main([
            "deploy", "--scenario", "bad-push", "--seeds", "1",
            "--clients", "60", "--duration", "300",
            "--serial", "--no-cache",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rolled-back" in out
        assert "rollback latency" in out

    def test_empty_seeds_rejected(self, capsys):
        from repro.cli import main

        assert main(["deploy", "--seeds", ","]) == 2
