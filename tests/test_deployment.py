"""Tests for the ADL deployment service."""

import pytest

from repro.cluster import ClusterManager, NoFreeNodeError, Package, SoftwareInstallationService, make_nodes
from repro.fractal import AdlError, parse_adl
from repro.jade.deployment import DeploymentService
from repro.wrappers import default_factory_registry


@pytest.fixture
def deployer(kernel, lan, directory):
    nodes = make_nodes(kernel, 10)
    cluster = ClusterManager(nodes)
    installer = SoftwareInstallationService(kernel, lan)
    installer.register(Package("tomcat", "3.3.2"))
    installer.register(Package("mysql", "4.0.17"))
    installer.register(Package("plb", "0.3"))
    svc = DeploymentService(
        kernel, default_factory_registry(), cluster, directory, installer, lan
    )
    svc.cluster = cluster
    return svc


SIMPLE = """
<definition name="app">
  <component name="mysql" type="mysql"/>
  <component name="cjdbc" type="cjdbc"/>
  <component name="plb" type="plb"/>
  <component name="tomcat" type="tomcat"/>
  <binding client="cjdbc.backends" server="mysql.mysql"/>
  <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
  <binding client="plb.workers" server="tomcat.http"/>
</definition>
"""


class TestDeploy:
    def test_deploys_and_starts(self, deployer, kernel):
        app = deployer.deploy(parse_adl(SIMPLE))
        app.start()
        kernel.run()
        assert app.instance("tomcat").lifecycle_controller.is_started()
        assert app.instance("plb").content.running

    def test_nodes_allocated_in_spec_order(self, deployer):
        app = deployer.deploy(parse_adl(SIMPLE))
        assert app.node_of(app.instance("mysql")).name == "node1"
        assert app.node_of(app.instance("cjdbc")).name == "node2"
        assert app.node_of(app.instance("plb")).name == "node3"
        assert app.node_of(app.instance("tomcat")).name == "node4"

    def test_replicas_expand_with_numbered_names(self, deployer):
        adl = """
        <definition name="app">
          <component name="mysql" type="mysql"/>
          <component name="cjdbc" type="cjdbc"/>
          <component name="tomcat" type="tomcat" replicas="3"/>
          <component name="plb" type="plb"/>
          <binding client="cjdbc.backends" server="mysql.mysql"/>
          <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
          <binding client="plb.workers" server="tomcat.http"/>
        </definition>
        """
        app = deployer.deploy(parse_adl(adl))
        names = [c.name for c in app.instances("tomcat")]
        assert names == ["tomcat1", "tomcat2", "tomcat3"]
        # The balancer's collection interface bound all three replicas.
        plb = app.instance("plb")
        assert len(plb.binding_controller.bound_instances("workers")) == 3

    def test_replicated_server_with_singleton_client_rejected(self, deployer):
        adl = """
        <definition name="app">
          <component name="cjdbc" type="cjdbc" replicas="2"/>
          <component name="tomcat" type="tomcat"/>
          <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
        </definition>
        """
        with pytest.raises(AdlError):
            deployer.deploy(parse_adl(adl))

    def test_composites_nest(self, deployer):
        adl = """
        <definition name="app">
          <component name="web-tier" composite="true">
            <component name="apache" type="apache" replicas="2"/>
          </component>
        </definition>
        """
        app = deployer.deploy(parse_adl(adl))
        tier = app.instance("web-tier")
        assert tier.is_composite()
        assert [c.name for c in tier.content_controller.sub_components()] == [
            "apache1",
            "apache2",
        ]

    def test_virtual_node_shares_hardware(self, deployer):
        adl = """
        <definition name="app">
          <component name="mysql" type="mysql">
            <virtual-node name="shared"/>
          </component>
          <component name="plb" type="plb" package="plb">
            <virtual-node name="shared"/>
          </component>
        </definition>
        """
        app = deployer.deploy(parse_adl(adl))
        assert app.node_of(app.instance("mysql")) is app.node_of(app.instance("plb"))

    def test_packages_installed(self, deployer, kernel):
        app = deployer.deploy(parse_adl(SIMPLE.replace(
            '<component name="tomcat" type="tomcat"/>',
            '<component name="tomcat" type="tomcat" package="tomcat"/>',
        )))
        kernel.run()
        node = app.node_of(app.instance("tomcat"))
        assert deployer.installer.is_installed("tomcat", node)

    def test_pool_exhaustion_surfaces(self, kernel, lan, directory):
        cluster = ClusterManager(make_nodes(kernel, 1))
        svc = DeploymentService(
            kernel, default_factory_registry(), cluster, directory, None, lan
        )
        adl = """
        <definition name="app">
          <component name="tomcat" type="tomcat" replicas="3"/>
        </definition>
        """
        with pytest.raises(NoFreeNodeError):
            svc.deploy(parse_adl(adl))

    def test_attributes_forwarded_to_factory(self, deployer):
        adl = """
        <definition name="app">
          <component name="mysql" type="mysql">
            <attribute name="port" value="3310"/>
          </component>
        </definition>
        """
        app = deployer.deploy(parse_adl(adl))
        assert app.instance("mysql").get_attr("port") == 3310

    def test_instance_lookup_on_replicated_spec_rejected(self, deployer):
        adl = """
        <definition name="app">
          <component name="mysql" type="mysql" replicas="2"/>
        </definition>
        """
        app = deployer.deploy(parse_adl(adl))
        with pytest.raises(KeyError):
            app.instance("mysql")
        assert len(app.instances("mysql")) == 2

    def test_cross_binding_matrix(self, deployer):
        """Figure 2's architecture: 2 Apaches × 2 Tomcats cross-bound."""
        adl = """
        <definition name="fig2">
          <component name="mysql" type="mysql"/>
          <component name="cjdbc" type="cjdbc"/>
          <component name="tomcat" type="tomcat" replicas="2"/>
          <component name="apache" type="apache" replicas="2"/>
          <binding client="cjdbc.backends" server="mysql.mysql"/>
          <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
          <binding client="apache.ajp" server="tomcat.ajp"/>
        </definition>
        """
        app = deployer.deploy(parse_adl(adl))
        for apache in app.instances("apache"):
            assert len(apache.binding_controller.bound_instances("ajp")) == 2
