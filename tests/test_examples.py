"""Smoke tests: the runnable examples must keep working.

Only the fast examples run in the suite (the heavy ramp ones are exercised
by the benchmarks); each runs in a subprocess so module state cannot leak.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "throughput" in out
    assert "Table 1" in out


def test_reconfiguration():
    out = run_example("reconfiguration.py")
    assert "worker.properties on node1 (before)" in out
    assert "host=node2" in out
    assert "host=node3" in out  # rebound to tomcat2


def test_adl_deployment():
    out = run_example("adl_deployment.py")
    assert "Architecture invariants: OK" in out
    assert "Request path: l4 -> " in out
    assert "Topology view" in out


def test_self_recovery():
    out = run_example("self_recovery.py")
    assert "State digests identical: True" in out
    assert "detected failure" in out


@pytest.mark.parametrize(
    "name",
    [
        "self_sizing.py",
        "latency_slo.py",
        "three_tier.py",
        "trace_replay.py",
        "capacity_planning.py",
    ],
)
def test_example_files_compile(name):
    """The heavy examples at least byte-compile (they run in benchmarks)."""
    source = (EXAMPLES / name).read_text()
    compile(source, name, "exec")
