"""Tests for result export (CSV / JSON)."""

import csv
import json

import pytest

from repro.metrics import MetricsCollector
from repro.metrics.export import series_rows, to_json_dict, write_csv, write_json


@pytest.fixture
def collector():
    c = MetricsCollector()
    for t in range(100):
        c.record_latency(float(t), 0.05 + 0.001 * t)
    c.record_workload(0.0, 80)
    c.record_workload(50.0, 200)
    c.record_replicas("database", 0.0, 1)
    c.record_replicas("database", 40.0, 2)
    c.record_tier_cpu("database", 1.0, 0.5, 0.6)
    c.record_node_sample(1.0, 0.2, 0.3)
    c.record_reconfiguration(40.0, "[database] grow")
    c.record_failure(60.0)
    return c


class TestSeriesRows:
    def test_all_series_present(self, collector):
        names = {name for name, _, _ in series_rows(collector)}
        assert names == {
            "latency_s",
            "cpu[database]",
            "cpu_raw[database]",
            "replicas[database]",
            "clients",
            "node_cpu",
            "node_memory",
        }

    def test_step_series_export_change_points(self, collector):
        rows = [r for r in series_rows(collector) if r[0] == "replicas[database]"]
        assert [(t, v) for _, t, v in rows] == [(0.0, 1.0), (40.0, 2.0)]

    def test_bucketing_reduces_rows(self, collector):
        fine = sum(1 for r in series_rows(collector, bucket_s=1.0) if r[0] == "latency_s")
        coarse = sum(
            1 for r in series_rows(collector, bucket_s=50.0) if r[0] == "latency_s"
        )
        assert coarse < fine


class TestCsv:
    def test_roundtrip(self, collector, tmp_path):
        path = tmp_path / "out.csv"
        rows = write_csv(collector, str(path))
        with open(path) as fh:
            parsed = list(csv.DictReader(fh))
        assert len(parsed) == rows
        assert {"series", "t_s", "value"} == set(parsed[0])
        floats = [float(r["value"]) for r in parsed]
        assert all(isinstance(v, float) for v in floats)


class TestJson:
    def test_report_structure(self, collector):
        report = to_json_dict(collector, horizon_s=100.0)
        assert report["requests"]["completed"] == 100
        assert report["requests"]["failed"] == 1
        assert report["requests"]["error_rate"] == pytest.approx(1 / 101)
        assert report["throughput_rps"] == pytest.approx(1.0)
        assert report["replicas"]["database"] == [[0.0, 1.0], [40.0, 2.0]]
        assert report["reconfigurations"] == [[40.0, "[database] grow"]]

    def test_json_serializable(self, collector, tmp_path):
        path = tmp_path / "report.json"
        write_json(collector, str(path), horizon_s=100.0)
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded["latency_s"]["count"] == 100

    def test_seed_recorded_when_given(self, collector, tmp_path):
        assert "seed" not in to_json_dict(collector)
        assert to_json_dict(collector, seed=23)["seed"] == 23
        path = tmp_path / "report.json"
        write_json(collector, str(path), horizon_s=100.0, seed=23)
        with open(path) as fh:
            assert json.load(fh)["seed"] == 23
