"""Tests for the extensions: latency-SLO manager, three-tier harness,
rolling rebind."""

import pytest

from repro.jade.latency_optimization import SloReactor
from repro.jade.control_loop import InhibitionLock
from repro.jade.rolling import RollingRebind, rolling_rebind
from repro.jade.sensors import LatencySensor
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.jade.three_tier import ThreeTierSystem
from repro.metrics import TimeSeries
from repro.workload.profiles import PiecewiseProfile, RampProfile


class TestLatencySensor:
    def test_consumes_series_incrementally(self, kernel):
        series = TimeSeries("lat")
        sensor = LatencySensor(kernel, series, window_s=10.0, period_s=1.0)
        readings = []
        sensor.subscribe(readings.append)
        sensor.on_start()
        kernel.schedule(0.5, series.append, 0.5, 0.2)
        kernel.schedule(1.5, series.append, 1.5, 0.4)
        kernel.run(until=3.0)
        assert readings[-1].smoothed == pytest.approx(0.3)

    def test_silent_periods_emit_nothing_when_empty(self, kernel):
        series = TimeSeries("lat")
        sensor = LatencySensor(kernel, series, window_s=5.0)
        readings = []
        sensor.subscribe(readings.append)
        sensor.on_start()
        kernel.run(until=3.0)
        assert readings == []

    def test_window_ages_out(self, kernel):
        series = TimeSeries("lat")
        sensor = LatencySensor(kernel, series, window_s=2.0)
        readings = []
        sensor.subscribe(readings.append)
        sensor.on_start()
        series.append(0.0, 1.0)
        kernel.run(until=5.0)
        # After the window passed, there is nothing to report.
        assert readings[-1].t <= 2.0


class FakeTier:
    def __init__(self, name, util):
        self.tier_name = name
        self._util = util
        self.replica_count = 1
        self.busy = False
        self.calls = []

    def active_nodes(self):
        return []

    def grow(self):
        self.calls.append("grow")
        self.replica_count += 1
        return True

    def shrink(self):
        self.calls.append("shrink")
        self.replica_count -= 1
        return True


class TestSloReactor:
    def make(self, kernel, tiers, **kw):
        kw.setdefault("max_latency_s", 0.5)
        kw.setdefault("min_latency_s", 0.05)
        kw.setdefault("warmup_samples", 0)
        reactor = SloReactor(kernel, tiers, InhibitionLock(kernel, 60.0), **kw)
        # Pin the utilization ranking without real nodes.
        reactor._tier_utilization = lambda t: t._util
        return reactor

    def reading(self, kernel, value):
        from repro.jade.sensors import LatencyReading

        return LatencyReading(kernel.now, value, value, 1)

    def test_grows_hottest_tier_on_violation(self, kernel):
        cold = FakeTier("app", 0.2)
        hot = FakeTier("db", 0.9)
        reactor = self.make(kernel, [cold, hot])
        reactor.on_reading(self.reading(kernel, 1.0))
        assert hot.calls == ["grow"]
        assert cold.calls == []

    def test_shrinks_idlest_overprovisioned_tier(self, kernel):
        a = FakeTier("app", 0.1)
        b = FakeTier("db", 0.5)
        a.replica_count = 2
        b.replica_count = 2
        reactor = self.make(kernel, [a, b])
        reactor.on_reading(self.reading(kernel, 0.01))
        assert a.calls == ["shrink"]
        assert b.calls == []

    def test_never_shrinks_below_floor(self, kernel):
        a = FakeTier("app", 0.1)
        reactor = self.make(kernel, [a])
        reactor.on_reading(self.reading(kernel, 0.01))
        assert a.calls == []

    def test_in_band_is_quiet(self, kernel):
        a = FakeTier("app", 0.5)
        reactor = self.make(kernel, [a])
        reactor.on_reading(self.reading(kernel, 0.2))
        assert a.calls == []

    def test_inhibition_shared(self, kernel):
        a = FakeTier("app", 0.9)
        reactor = self.make(kernel, [a])
        reactor.on_reading(self.reading(kernel, 1.0))
        reactor.on_reading(self.reading(kernel, 1.0))
        assert a.calls == ["grow"]
        assert reactor.decisions_suppressed == 1

    def test_validation(self, kernel):
        with pytest.raises(ValueError):
            SloReactor(kernel, [FakeTier("a", 0.1)], InhibitionLock(kernel, 1.0),
                       max_latency_s=0.1, min_latency_s=0.5)
        with pytest.raises(ValueError):
            SloReactor(kernel, [], InhibitionLock(kernel, 1.0),
                       max_latency_s=0.5, min_latency_s=0.1)


class TestSloManagerEndToEnd:
    def test_slo_manager_scales_under_step_load(self):
        profile = PiecewiseProfile([(0.0, 80), (60.0, 320)], duration_s=900.0)
        cfg = ExperimentConfig(
            profile=profile, seed=11, use_slo_manager=True, tail_s=30.0
        )
        system = ManagedSystem(cfg)
        col = system.run()
        # The DB was the bottleneck: SLO manager must have grown it.
        assert system.db_tier.grows_completed >= 1
        # SLO respected at the end of the run.
        tail = col.latencies.window(700.0, 900.0)
        assert tail.mean() < cfg.slo_max_latency_s

    def test_slo_manager_is_a_component(self):
        cfg = ExperimentConfig(use_slo_manager=True)
        system = ManagedSystem(cfg)
        names = [
            c.name
            for c in system.optimizer.composite.content_controller.sub_components()
        ]
        assert names == ["slo-sensor", "slo-reactor"]


class TestThreeTier:
    @pytest.fixture(scope="class")
    def run(self):
        profile = RampProfile(warmup_s=150, step_period_s=30, cooldown_s=150)
        system = ThreeTierSystem(profile, seed=2)
        system.run()
        return system

    def test_web_tier_scales(self, run):
        assert run.web_tier.grows_completed >= 1
        assert run.collector.tier_replicas["web"].max() == 2

    def test_db_tier_scales(self, run):
        assert run.db_tier.grows_completed >= 1

    def test_both_tiers_shrink_on_descent(self, run):
        assert run.web_tier.shrinks_completed >= 1
        assert run.db_tier.shrinks_completed >= 1

    def test_new_apache_bound_to_both_tomcats(self, run):
        # Find a grow event in the log: the added apache replica was bound
        # to both Tomcats via its mod_jk collection interface.
        grown = [
            c
            for c in run.app.root.content_controller.sub_components()
            if c.name.startswith("apache") and c.name != "apache"
        ]
        if grown:  # may already be shrunk away; check the event trail then
            apache = grown[0]
            assert len(apache.binding_controller.bound_instances("ajp")) == 2
        assert any("apache2" in d for _, d in run.collector.reconfigurations)

    def test_no_failed_requests(self, run):
        assert run.collector.failed_requests == 0


class TestRollingRebind:
    def build_web(self, kernel, lan, directory, n_apaches=3):
        from repro.cluster import make_nodes
        from repro.wrappers import make_apache_component, make_tomcat_component

        nodes = make_nodes(kernel, n_apaches + 2, prefix="w")
        kw = dict(kernel=kernel, directory=directory, lan=lan)
        tomcat_old = make_tomcat_component("t-old", node=nodes[-2], **kw)
        tomcat_new = make_tomcat_component("t-new", node=nodes[-1], **kw)
        apaches = []
        for i in range(n_apaches):
            apache = make_apache_component(f"a{i}", node=nodes[i], **kw)
            apache.bind("ajp", tomcat_old.get_interface("ajp"))
            apache.start()
            apaches.append(apache)
        return apaches, tomcat_old, tomcat_new

    def test_rolls_every_frontend(self, kernel, lan, directory):
        apaches, old, new = self.build_web(kernel, lan, directory)
        op = rolling_rebind(
            kernel, apaches, "ajp", [new.get_interface("ajp")]
        )
        kernel.run()
        assert op.done.fired
        assert op.restarted == 3
        for apache in apaches:
            assert apache.lifecycle_controller.is_started()
            bound = apache.binding_controller.bound_servers("ajp")
            assert [s.component.name for s in bound] == ["t-new"]

    def test_at_most_one_frontend_down_at_a_time(self, kernel, lan, directory):
        apaches, old, new = self.build_web(kernel, lan, directory)
        max_down = 0

        def watch():
            nonlocal max_down
            down = sum(
                1 for a in apaches if not a.lifecycle_controller.is_started()
            )
            max_down = max(max_down, down)

        kernel.every(0.1, watch)
        RollingRebind(
            kernel, apaches, "ajp", [new.get_interface("ajp")]
        ).start()
        kernel.run(until=60.0)
        assert max_down == 1

    def test_rebind_to_multiple_targets(self, kernel, lan, directory):
        apaches, old, new = self.build_web(kernel, lan, directory, n_apaches=1)
        rolling_rebind(
            kernel,
            apaches,
            "ajp",
            [old.get_interface("ajp"), new.get_interface("ajp")],
        )
        kernel.run()
        assert len(apaches[0].binding_controller.bound_instances("ajp")) == 2

    def test_validation(self, kernel):
        with pytest.raises(ValueError):
            RollingRebind(kernel, [], "ajp", ["x"])
