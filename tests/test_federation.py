"""Federation tests: lifecycle split, cross-region determinism, routing,
cache topology, and the committed BENCH gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.federation.coordinator import run_federation
from repro.federation.messages import RegionReport, WeightUpdate, ordered
from repro.federation.routing import GlobalLoadBalancer, RoutedProfile
from repro.federation.spec import (
    FederationSpec,
    RegionSpec,
    evacuation,
    follow_the_sun,
    global_ramp,
)
from repro.workload.profiles import ConstantProfile, DiurnalProfile, RampProfile

REPO = Path(__file__).parent.parent

SMALL_SCALE = 0.04


def _small(regions: int = 2, seed: int = 1) -> FederationSpec:
    return global_ramp(regions=regions, scale=SMALL_SCALE, seed=seed)


# ----------------------------------------------------------------------
# Tentpole: the ManagedSystem lifecycle split
# ----------------------------------------------------------------------
def test_run_equals_chunked_advance():
    """start_all + many advance calls + finish must be byte-identical to
    the one-shot run() — the property the epoch coordinator rests on."""
    from repro.jade.system import ExperimentConfig, ManagedSystem

    def config():
        return ExperimentConfig(
            seed=3, profile=ConstantProfile(clients=40, duration_s=120.0)
        )

    whole = ManagedSystem(config())
    whole.run()

    chunked = ManagedSystem(config())
    horizon = chunked.start_all()
    t = 0.0
    while t < horizon:
        t = min(t + 7.0, horizon)  # deliberately not a divisor of 120
        chunked.advance(t)
    chunked.finish()

    assert whole.summary() == chunked.summary()
    assert (
        whole.kernel.events_processed == chunked.kernel.events_processed
    )
    assert list(whole.collector.latencies.values) == list(
        chunked.collector.latencies.values
    )


def test_finish_requires_start():
    from repro.jade.system import ExperimentConfig, ManagedSystem

    system = ManagedSystem(
        ExperimentConfig(profile=ConstantProfile(clients=5, duration_s=30.0))
    )
    with pytest.raises(RuntimeError):
        system.finish()


# ----------------------------------------------------------------------
# Cross-region determinism
# ----------------------------------------------------------------------
def test_serial_parallel_byte_identical_scorecards():
    spec = _small(regions=2)
    serial = run_federation(spec, parallel=False)
    parallel = run_federation(spec, parallel=True)
    assert serial.mode == "serial"
    assert serial.scorecards_json() == parallel.scorecards_json()
    assert parallel.events_processed == serial.events_processed


def test_serial_rerun_identical():
    spec = _small(regions=2)
    first = run_federation(spec, parallel=False)
    second = run_federation(spec, parallel=False)
    assert first.scorecards_json() == second.scorecards_json()
    assert [
        u for r in first.regions.values() for u in r.updates_applied
    ] == [u for r in second.regions.values() for u in r.updates_applied]


def test_message_ordering_stability():
    """Delivery order is a pure sort — any arrival permutation routes
    identically."""
    msgs = [
        WeightUpdate(2, "us-east", 1.0),
        WeightUpdate(1, "eu-west", 0.9),
        WeightUpdate(1, "ap-east", 1.1),
        WeightUpdate(2, "ap-east", 0.8),
    ]
    expect = ordered(msgs)
    assert [m.region for m in expect[:2]] == ["ap-east", "eu-west"]
    for perm in (msgs[::-1], msgs[2:] + msgs[:2], sorted(
        msgs, key=lambda m: m.weight
    )):
        assert ordered(perm) == expect


def test_region_count_changes_outcome_not_siblings():
    """Adding a region must not perturb an existing region's RNG universe:
    its seed depends only on (fed seed, region name)."""
    from repro.federation.spec import build_region_config

    two = _small(regions=2)
    three = _small(regions=3)
    for index in range(2):
        assert (
            build_region_config(two, two.regions[index]).seed
            == build_region_config(three, three.regions[index]).seed
        )


# ----------------------------------------------------------------------
# Routing policy
# ----------------------------------------------------------------------
def _report(name: str, epoch: int = 0, p95: float = 0.1, replicas: int = 2):
    return RegionReport(
        epoch=epoch,
        region=name,
        t=60.0,
        active_clients=100,
        app_replicas=replicas,
        db_replicas=replicas,
        free_nodes=2,
        completed=500,
        failed=0,
        latency_mean_s=p95 / 2,
        latency_p95_s=p95,
    )


def test_balancer_shifts_weight_to_healthy_regions():
    balancer = GlobalLoadBalancer(["a", "b"], gain=1.0)
    updates = balancer.route(
        0,
        {"a": _report("a", p95=2.0), "b": _report("b", p95=0.1)},
        {},
        90.0,
    )
    weights = {u.region: u.weight for u in updates}
    assert weights["b"] > 1.0 > weights["a"]
    assert weights["a"] >= balancer.min_weight
    assert weights["b"] <= balancer.max_weight


def test_balancer_evacuation_spills_projected_demand():
    profile = ConstantProfile(clients=120, duration_s=600.0)
    balancer = GlobalLoadBalancer(
        ["a", "b", "c"], evacuate_at_s={"a": 100.0}
    )
    updates = balancer.route(
        1,
        {name: _report(name, epoch=1) for name in ("a", "b", "c")},
        {"a": profile},
        120.0,  # past the deadline
    )
    by_region = {u.region: u for u in updates}
    assert by_region["a"].weight == 0.0
    assert by_region["a"].reason == "evacuation"
    # the evacuated region's 120 projected clients all land somewhere
    assert (
        by_region["b"].spill_clients + by_region["c"].spill_clients == 120
    )


def test_routed_profile_weight_and_spill():
    base = ConstantProfile(clients=100, duration_s=60.0)
    routed = RoutedProfile(base)
    assert routed.clients_at(10.0) == 100
    routed.apply(WeightUpdate(1, "r", 0.5, spill_clients=30))
    assert routed.clients_at(10.0) == 80
    routed.apply(WeightUpdate(2, "r", 0.0, spill_clients=0))
    assert routed.clients_at(10.0) == 0
    assert routed.duration_s == 60.0
    assert routed.peak() == 100


def test_diurnal_profile_phase_shift():
    day = DiurnalProfile(
        base=50, peak=250, period_s=400.0, phase_s=0.0, duration_s=400.0
    )
    assert day.clients_at(0.0) == 50
    assert day.clients_at(200.0) == 250
    shifted = DiurnalProfile(
        base=50, peak=250, period_s=400.0, phase_s=100.0, duration_s=400.0
    )
    assert shifted.clients_at(100.0) == 50
    assert shifted.clients_at(300.0) == 250


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def test_evacuation_drains_hit_region():
    spec = evacuation(regions=2, scale=SMALL_SCALE)
    result = run_federation(spec, parallel=False)
    hit = spec.regions[0].name
    survivor = spec.regions[1].name
    hit_updates = result.regions[hit].updates_applied
    assert any(
        u.reason == "evacuation" and u.weight == 0.0 for u in hit_updates
    )
    assert result.regions[hit].reports[-1].active_clients == 0
    assert max(
        u.spill_clients for u in result.regions[survivor].updates_applied
    ) > 0


def test_follow_the_sun_peaks_rotate():
    spec = follow_the_sun(regions=3, scale=SMALL_SCALE)
    result = run_federation(spec, parallel=False)
    peaks = {}
    for name, region in result.regions.items():
        actives = [r.active_clients for r in region.reports]
        peaks[name] = max(range(len(actives)), key=actives.__getitem__)
    assert len(set(peaks.values())) >= 2


def test_spec_validation():
    ramp = RampProfile(warmup_s=10.0, step_period_s=5.0, cooldown_s=10.0)
    with pytest.raises(ValueError):
        FederationSpec(name="empty", regions=())
    with pytest.raises(ValueError):
        FederationSpec(
            name="dup",
            regions=(RegionSpec("a", ramp), RegionSpec("a", ramp)),
        )
    with pytest.raises(ValueError):
        FederationSpec(
            name="mixed",
            regions=(
                RegionSpec("a", ramp),
                RegionSpec("b", ConstantProfile(clients=10, duration_s=9.0)),
            ),
        )


# ----------------------------------------------------------------------
# Cache topology (satellite regression)
# ----------------------------------------------------------------------
def test_cache_key_includes_federation_topology(tmp_path):
    from repro.runner.cache import ResultCache

    cache = ResultCache(tmp_path)
    fp = "fp"

    def make(n):
        class Cfg:  # same type name + identical __dict__ for both
            def __init__(self):
                self.x = 1

            def topology(self):
                return {"regions": n}

        return Cfg()

    from repro.runner.cache import describe_config

    a, b = make(1), make(2)
    assert describe_config(a) == describe_config(b)  # the aliasing trap
    assert cache.key_for(a, fp) != cache.key_for(b, fp)


def test_federated_spec_never_aliases_region_config(tmp_path):
    from repro.federation.spec import build_region_config
    from repro.runner.cache import ResultCache

    cache = ResultCache(tmp_path)
    spec = _small(regions=2)
    keys = {cache.key_for(spec, "fp")}
    keys.add(cache.key_for(build_region_config(spec, spec.regions[0]), "fp"))
    keys.add(cache.key_for(_small(regions=3), "fp"))
    import dataclasses

    keys.add(cache.key_for(dataclasses.replace(spec, epoch_s=99.0), "fp"))
    assert len(keys) == 4


def test_federation_result_cached_roundtrip(tmp_path):
    from repro.runner.cache import ResultCache

    cache = ResultCache(tmp_path)
    spec = _small(regions=2)
    cold = run_federation(spec, parallel=False, cache=cache)
    warm = run_federation(spec, parallel=False, cache=cache)
    assert cache.hits == 1
    assert warm.scorecards_json() == cold.scorecards_json()


def test_runner_executes_federation_spec(tmp_path):
    """A FederationSpec is a first-class runner payload (the sweep's
    --regions axis relies on this dispatch)."""
    from repro.runner.cache import ResultCache
    from repro.runner.parallel import ExperimentRunner

    runner = ExperimentRunner(cache=ResultCache(tmp_path), parallel=False)
    result = runner.run(_small(regions=2))
    summary = result.summary()
    assert summary["completed"] > 0
    assert set(result.regions) == {"ap-east", "eu-west"}


def test_sweep_regions_axis():
    from repro.runner.sweep import SweepPoint, SweepSpec

    spec = SweepSpec(
        seeds=(1,), scales=(SMALL_SCALE,), policies=("managed",),
        regions=(1, 2),
    )
    labels = [p.label for p in spec.grid()]
    assert labels == [
        f"managed-s1-x{SMALL_SCALE:g}-c1",
        f"managed-s1-x{SMALL_SCALE:g}-c1-r2",
    ]
    point = spec.grid()[1]
    config = point.config()
    assert type(config).__name__ == "FederationSpec"
    assert len(config.regions) == 2
    with pytest.raises(ValueError):
        SweepPoint("managed", 1, 0.1, 1, regions=0)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_epoch_routed_event_registered():
    from repro.obs.events import EVENT_KINDS, EpochRouted

    assert EVENT_KINDS["epoch-routed"] is EpochRouted


def test_tracer_region_stamping():
    """A region-tagged tracer stamps every record — even one whose event
    carries its own region field — so merged traces stay separable."""
    from repro.obs.events import EpochRouted, ProbeReading
    from repro.obs.tracer import Tracer

    tagged = Tracer(run_id="fed", region="us-east")
    tagged.emit(
        EpochRouted(
            1.0, region="other", epoch=0, weight=1.0,
            spill_clients=0, reason="routing",
        )
    )
    tagged.emit(ProbeReading(2.0, probe="app", smoothed=0.5, raw=0.6, nodes=2))
    assert [r["region"] for r in tagged.records()] == ["us-east", "us-east"]

    untagged = Tracer(run_id="solo")
    untagged.emit(ProbeReading(2.0, probe="app", smoothed=0.5, raw=0.6, nodes=2))
    assert "region" not in untagged.records()[0]


# ----------------------------------------------------------------------
# Persistent shared pool (satellite)
# ----------------------------------------------------------------------
def test_shared_pool_reused_across_fanouts():
    from repro.runner import parallel as P

    P.shutdown_pool()
    created0 = P.POOL_STATS["created"]
    reused0 = P.POOL_STATS["reused"]
    try:
        assert P.fanout_map(abs, [1, -2], max_workers=2) == [1, 2]
        assert P.fanout_map(abs, [-3, 4], max_workers=2) == [3, 4]
    finally:
        stats = P.pool_stats()
        P.shutdown_pool()
    assert stats["created"] == created0 + 1
    assert stats["reused"] >= reused0 + 1
    assert stats["est_spawn_saved_s"] >= 0.0


def test_pool_marker_set_in_workers():
    from repro.runner import parallel as P

    P.shutdown_pool()
    try:
        flags = P.fanout_map(_in_pool_probe, [0, 1], max_workers=2)
        assert flags == [True, True]
        assert not P.in_pool_worker()  # the parent stays unmarked
    finally:
        P.shutdown_pool()


def _in_pool_probe(_):
    from repro.runner.parallel import in_pool_worker

    return in_pool_worker()


# ----------------------------------------------------------------------
# The committed BENCH gate
# ----------------------------------------------------------------------
def test_committed_federation_section():
    """BENCH_engine.json must carry the 4-region federation headline:
    byte-identical scorecards and >= 3x critical-path speedup."""
    report = json.loads((REPO / "BENCH_engine.json").read_text())
    section = report.get("federation")
    assert section is not None, "no 'federation' section committed"
    assert section["regions"] == 4
    assert section["byte_identical"] is True
    assert section["speedup"] >= 3.0
    assert section["evacuation"]["drained"] is True
    assert section["follow_the_sun"]["distinct_peaks"] >= 2
