"""The hybrid fluid/discrete workload engine.

Covers the accuracy-gate machinery, the hybrid handoff at the user
threshold, RNG-stream independence (fluid draws nothing from the seeded
streams), serial==pool==cache byte-identity for fluid configs, and the
large-cohort numeric-stability fix in the Gamma demand draws.
"""

import math
from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.jade.system import ExperimentConfig
from repro.metrics.collector import MetricsCollector
from repro.runner import ExperimentRunner, ResultCache
from repro.workload.fluid_bench import TOLERANCES, run_accuracy_gate
from repro.workload.profiles import RampProfile
from repro.workload.rubis import RubisModel


def fluid_ramp_config(seed=1, scale=0.05, fluid=True, threshold=0, **kw):
    return ExperimentConfig(
        profile=RampProfile(
            warmup_s=300.0 * scale,
            step_period_s=60.0 * scale,
            cooldown_s=300.0 * scale,
        ),
        seed=seed,
        managed=True,
        fluid=fluid,
        fluid_threshold=threshold,
        **kw,
    )


# ----------------------------------------------------------------------
# Satellite: Gamma-additive demand draws at very large K
# ----------------------------------------------------------------------
class TestVaryLargeCohorts:
    def model(self, seed=42):
        from repro.simulation import SimKernel

        return RubisModel(SimKernel(), rng=np.random.default_rng(seed))

    def test_small_cohorts_bit_identical_to_plain_gamma(self):
        m = self.model()
        ref = np.random.default_rng(42)
        shape = m.cal.demand_gamma_shape
        for weight in (1, 10, 100, 9999):
            assert m._vary(0.01, weight=weight) == float(
                ref.gamma(shape * weight, 0.01 / shape)
            )

    def test_gaussian_limit_engages_at_documented_k(self):
        m = self.model()
        shape = m.cal.demand_gamma_shape
        switch = int(math.ceil(m.GAUSSIAN_LIMIT_SHAPE / shape))
        # below the switch: exact Gamma (one gamma variate consumed)
        ref = np.random.default_rng(42)
        assert m._vary(0.01, weight=switch - 1) == float(
            ref.gamma(shape * (switch - 1), 0.01 / shape)
        )
        # at the switch: one standard-normal variate consumed instead
        m2 = self.model()
        ref2 = np.random.default_rng(42)
        total = 0.01 * switch
        k = shape * switch
        expected = total + (total / math.sqrt(k)) * ref2.standard_normal()
        assert m2._vary(0.01, weight=switch) == float(max(expected, 0.0))

    def test_gaussian_limit_mean_and_spread(self):
        m = self.model(seed=7)
        weight, mean = 100_000, 0.01
        total = mean * weight
        draws = np.array([m._vary(mean, weight=weight) for _ in range(500)])
        assert abs(draws.mean() - total) / total < 0.001
        # relative sd of a Gamma(k) sum is 1/sqrt(k)
        k = m.cal.demand_gamma_shape * weight
        assert draws.std() / total == pytest.approx(1 / math.sqrt(k), rel=0.2)
        assert (draws > 0).all()

    def test_overflowing_aggregate_raises_instead_of_inf(self):
        m = self.model()
        with pytest.raises(ValueError, match="demand draw overflow"):
            m._vary(1e300, weight=10**20)


# ----------------------------------------------------------------------
# Accuracy-gate machinery (synthetic runs; the full-scale gate is below)
# ----------------------------------------------------------------------
def synthetic_run(latency=0.1, completed=1000, cpu=0.5, db_changes=()):
    col = MetricsCollector()
    for t in range(0, 600, 10):
        col.record_latency(float(t), latency, weight=completed // 60)
        col.record_tier_cpu("application", float(t), cpu, cpu)
        col.record_tier_cpu("database", float(t), cpu, cpu)
    col.record_replicas("application", 0.0, 1)
    col.record_replicas("database", 0.0, 1)
    for t, n in db_changes:
        col.record_replicas("database", t, n)
    config = SimpleNamespace(profile=SimpleNamespace(duration_s=600.0))
    return SimpleNamespace(collector=col, config=config)


class TestAccuracyGateMachinery:
    def test_identical_runs_pass(self):
        gate = run_accuracy_gate(
            synthetic_run(db_changes=[(100.0, 2)]),
            synthetic_run(db_changes=[(100.0, 2)]),
        )
        assert gate["passed"] and all(gate["checks"].values())
        assert gate["change_time_skew_s"] == 0.0
        assert gate["latency_rel_diff"]["max"] == 0.0

    def test_diverged_replica_sequence_fails(self):
        gate = run_accuracy_gate(
            synthetic_run(db_changes=[(100.0, 2)]),
            synthetic_run(db_changes=[(100.0, 2), (200.0, 3)]),
        )
        assert not gate["replica_sequences_identical"]
        assert not gate["passed"]

    def test_change_time_skew_beyond_window_fails(self):
        skew = TOLERANCES["change_time_skew_s"] + 1.0
        gate = run_accuracy_gate(
            synthetic_run(db_changes=[(100.0, 2)]),
            synthetic_run(db_changes=[(100.0 + skew, 2)]),
        )
        assert gate["replica_sequences_identical"]
        assert not gate["checks"]["change_time_skew_s"]

    def test_latency_drift_beyond_tolerance_fails(self):
        factor = 1.0 + TOLERANCES["latency_rel_max"] + 0.05
        gate = run_accuracy_gate(
            synthetic_run(latency=0.1), synthetic_run(latency=0.1 * factor)
        )
        assert not gate["checks"]["latency_rel_max"]

    def test_cpu_drift_beyond_tolerance_fails(self):
        drift = TOLERANCES["tier_cpu_mean_abs"] + 0.01
        gate = run_accuracy_gate(
            synthetic_run(cpu=0.5), synthetic_run(cpu=0.5 + drift)
        )
        assert not gate["checks"]["tier_cpu_mean_abs"]


# ----------------------------------------------------------------------
# Hybrid handoff at the threshold
# ----------------------------------------------------------------------
class TestHybridHandoff:
    def run_hybrid(self, threshold=300, scale=0.05, seed=1):
        from repro.jade.system import ManagedSystem

        system = ManagedSystem(fluid_ramp_config(seed, scale, threshold=threshold))
        system.run()
        return system

    def test_crosses_both_ways_and_counts(self):
        system = self.run_hybrid()
        stats = system.emulator.fluid_stats()
        # ramp passes 300 users on the way up and back down
        assert stats["handoffs_to_fluid"] >= 1
        assert stats["handoffs_to_discrete"] >= 1
        assert stats["peak_fluid_population"] >= 300
        assert stats["ticks"] > 0 and stats["completions"] > 0

    def test_no_lost_or_duplicated_demand_across_switch(self):
        system = self.run_hybrid()
        profile = system.config.profile
        # the recorded workload staircase must follow the profile exactly:
        # every target the profile emits appears once, regardless of
        # which engine was serving it
        changes = system.collector.workload.changes
        for t, clients in changes[1:]:  # [0] is the series' (0, 0) sentinel
            assert clients == profile.clients_at(t), (t, clients)
        peak = max(v for _, v in system.collector.workload.changes)
        assert peak == profile.peak_clients
        # both engines completed work (latency samples before the first
        # switch and while fluid was active)
        col = system.collector
        assert col.completed_requests > 0
        assert col.failed_requests == 0

    def test_discrete_only_below_threshold(self):
        # threshold above the peak: the fluid engine must never engage
        system = self.run_hybrid(threshold=10_000)
        stats = system.emulator.fluid_stats()
        assert stats["handoffs_to_fluid"] == 0
        assert stats["ticks"] == 0
        assert system.collector.completed_requests > 0

    def test_fluid_stats_surface_on_completed_run(self):
        from repro.runner.results import CompletedRun
        from repro.runner.parallel import execute_config

        run = execute_config(fluid_ramp_config(threshold=300))
        assert isinstance(run, CompletedRun)
        assert run.fluid is not None
        assert run.fluid.handoffs_to_fluid >= 1
        assert run.fluid.threshold == 300
        # discrete configs keep the slot empty
        discrete = execute_config(fluid_ramp_config(fluid=False))
        assert discrete.fluid is None


# ----------------------------------------------------------------------
# RNG-stream independence
# ----------------------------------------------------------------------
class TestRngIndependence:
    def test_market_price_tape_unperturbed(self):
        from repro.market.scenario import PRESETS, market_config

        base = market_config(
            PRESETS["spot-heavy"](), seed=3, peak=200, scale=0.05
        )
        runner = ExperimentRunner(cache=None, parallel=False)
        runs = runner.run_many(
            {"discrete": base, "fluid": replace(base, fluid=True)}
        )
        d, f = runs["discrete"].market, runs["fluid"].market
        assert d is not None and f is not None
        assert d.price_history == f.price_history

    def test_chaos_fault_schedule_unperturbed(self):
        from repro.chaos import PRESETS, campaign_config

        base = campaign_config(
            PRESETS["crash"](), seed=3, clients=40, duration_s=240.0
        )
        runner = ExperimentRunner(cache=None, parallel=False)
        runs = runner.run_many(
            {"discrete": base, "fluid": replace(base, fluid=True)}
        )
        d, f = runs["discrete"].chaos, runs["fluid"].chaos
        assert d is not None and f is not None
        assert d.faults_injected == f.faults_injected > 0
        assert [
            (e["t"], e["fault"], e["node"]) for e in d.events
        ] == [(e["t"], e["fault"], e["node"]) for e in f.events]


# ----------------------------------------------------------------------
# serial == pool == cache byte-identity for fluid configs
# ----------------------------------------------------------------------
class TestFluidByteIdentity:
    def test_parallel_matches_serial_exactly(self):
        configs = {
            "fluid": fluid_ramp_config(),
            "hybrid": fluid_ramp_config(threshold=300),
        }
        par = ExperimentRunner(cache=None, parallel=True).run_many(configs)
        ser = ExperimentRunner(cache=None, parallel=False).run_many(configs)
        for label in configs:
            assert par[label].summary() == ser[label].summary()
            assert np.array_equal(
                par[label].collector.latencies.values,
                ser[label].collector.latencies.values,
            )
            assert par[label].events_processed == ser[label].events_processed

    def test_cache_roundtrip_is_exact(self, tmp_path):
        config = {"fluid": fluid_ramp_config(seed=2)}
        first = ExperimentRunner(cache=ResultCache(root=tmp_path))
        out1 = first.run_many(config)
        assert first.cache.misses == 1 and first.cache.hits == 0

        second = ExperimentRunner(cache=ResultCache(root=tmp_path))
        out2 = second.run_many(config)
        assert second.cache.hits == 1 and second.cache.misses == 0
        assert out1["fluid"].summary() == out2["fluid"].summary()
        assert np.array_equal(
            out1["fluid"].collector.latencies.values,
            out2["fluid"].collector.latencies.values,
        )
        assert out2["fluid"].fluid is not None

    def test_fluid_knobs_distinguish_cache_keys(self):
        from repro.runner import describe_config

        base = describe_config(fluid_ramp_config(fluid=False))
        assert describe_config(fluid_ramp_config()) != base
        assert describe_config(fluid_ramp_config(threshold=5)) != describe_config(
            fluid_ramp_config()
        )


# ----------------------------------------------------------------------
# The committed accuracy gate, end to end (full-scale Fig. 9 pair)
# ----------------------------------------------------------------------
class TestAccuracyGateEndToEnd:
    def test_fig9_gate_and_million_budget(self):
        from repro.workload.fluid_bench import (
            check_section,
            run_fluid_section,
        )

        section = run_fluid_section(use_cache=False)
        check_section(section)  # replica identity, tolerances, 1M budget
        gate = section["accuracy"]
        assert gate["replica_sequences"]["database"]["fluid"][-1] == 1
        assert section["speedup"]["speedup"] > 2.0
        assert section["million"]["users"] >= 1_000_000
