"""Tests for the capacity forecasters (repro.capacity.forecast)."""

import math

import pytest

from repro.capacity.forecast import (
    EwmaForecaster,
    FORECASTERS,
    LinearTrendForecaster,
    SeasonalForecaster,
    make_forecaster,
)


class TestForecasterBase:
    def test_rejects_non_monotonic_observations(self):
        fc = EwmaForecaster()
        fc.observe(10.0, 5.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            fc.observe(9.0, 5.0)

    def test_equal_timestamps_allowed(self):
        fc = EwmaForecaster()
        fc.observe(10.0, 5.0)
        fc.observe(10.0, 6.0)  # same instant: fine
        assert fc.observations == 2

    def test_history_is_bounded(self):
        fc = EwmaForecaster(history_s=100.0)
        for t in range(0, 1000, 10):
            fc.observe(float(t), 1.0)
        oldest = fc._samples[0][0]
        assert oldest >= 990.0 - 100.0

    def test_predict_empty_before_any_observation(self):
        assert EwmaForecaster().predict(60.0) == []
        assert math.isnan(EwmaForecaster().predicted_peak(60.0))

    def test_predict_validates_horizon_and_step(self):
        fc = EwmaForecaster()
        fc.observe(0.0, 1.0)
        with pytest.raises(ValueError):
            fc.predict(0.0)
        with pytest.raises(ValueError):
            fc.predict(60.0, step_s=0.0)

    def test_predict_times_start_after_last_observation(self):
        fc = EwmaForecaster()
        fc.observe(100.0, 42.0)
        series = fc.predict(60.0, step_s=15.0)
        assert [t for t, _ in series] == [115.0, 130.0, 145.0, 160.0]

    def test_registry_names(self):
        assert set(FORECASTERS) == {"ewma", "trend", "seasonal"}

    def test_make_forecaster(self):
        assert isinstance(make_forecaster("ewma", tau_s=5.0), EwmaForecaster)
        assert isinstance(make_forecaster("trend"), LinearTrendForecaster)
        assert isinstance(make_forecaster("seasonal"), SeasonalForecaster)
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("oracle")


class TestEwma:
    def test_constant_stream_holds_level(self):
        fc = EwmaForecaster(tau_s=30.0)
        for t in range(0, 300, 10):
            fc.observe(float(t), 7.0)
        assert fc.level == pytest.approx(7.0)
        assert all(v == pytest.approx(7.0) for _, v in fc.predict(120.0))

    def test_step_response_converges(self):
        fc = EwmaForecaster(tau_s=20.0)
        fc.observe(0.0, 0.0)
        for t in range(10, 400, 10):
            fc.observe(float(t), 100.0)
        # After many time constants the level is essentially the new value.
        assert fc.level == pytest.approx(100.0, abs=1.0)

    def test_irregular_spacing_uses_continuous_decay(self):
        # One 20 s gap must decay exactly like two 10 s gaps.
        a = EwmaForecaster(tau_s=30.0)
        a.observe(0.0, 0.0)
        a.observe(20.0, 60.0)
        b = EwmaForecaster(tau_s=30.0)
        b.observe(0.0, 0.0)
        b.observe(10.0, 60.0)
        b.observe(20.0, 60.0)
        assert a.level == pytest.approx(b.level)


class TestLinearTrend:
    def test_exact_line_is_extrapolated(self):
        fc = LinearTrendForecaster(window_s=100.0)
        for t in range(0, 110, 10):
            fc.observe(float(t), 50.0 + 2.0 * t)
        series = fc.predict(30.0, step_s=10.0)
        for t, v in series:
            assert v == pytest.approx(50.0 + 2.0 * t, rel=1e-9)

    def test_falling_line_clamps_at_zero(self):
        fc = LinearTrendForecaster(window_s=100.0)
        for t in range(0, 110, 10):
            fc.observe(float(t), max(0.0, 50.0 - 1.0 * t))
        far = fc.predict(600.0, step_s=100.0)
        assert far[-1][1] == 0.0

    def test_single_observation_predicts_flat(self):
        fc = LinearTrendForecaster()
        fc.observe(0.0, 33.0)
        assert all(v == pytest.approx(33.0) for _, v in fc.predict(60.0))

    def test_fit_window_excludes_stale_samples(self):
        fc = LinearTrendForecaster(window_s=50.0)
        # Old falling segment, then a recent rising one: only the rise fits.
        for t in range(0, 100, 10):
            fc.observe(float(t), 1000.0 - 5.0 * t)
        for t in range(100, 160, 10):
            fc.observe(float(t), 3.0 * t)
        peak = fc.predicted_peak(60.0, step_s=15.0)
        assert peak > fc.last[1]  # still rising


class TestSeasonal:
    def test_learns_periodic_shape(self):
        fc = SeasonalForecaster(period_s=100.0, buckets=4)
        # Two full periods of a square wave: 10 in the first half, 30 in
        # the second.
        for period in range(2):
            for t, v in ((0, 10), (25, 10), (50, 30), (75, 30)):
                fc.observe(period * 100.0 + t, float(v))
        # Last observation is at phase 0.75 (value 30). Phase 0.25 of the
        # next period should forecast the learned 10.
        series = dict(fc.predict(60.0, step_s=25.0))
        assert series[225.0] == pytest.approx(10.0)

    def test_unseen_phase_holds_level(self):
        fc = SeasonalForecaster(period_s=100.0, buckets=4)
        fc.observe(10.0, 55.0)  # only one bucket populated
        series = fc.predict(50.0, step_s=25.0)
        assert all(v == pytest.approx(55.0) for _, v in series)

    def test_level_offset_shifts_forecast(self):
        cold = SeasonalForecaster(period_s=100.0, buckets=4)
        hot = SeasonalForecaster(period_s=100.0, buckets=4)
        for t, v in ((0, 10), (25, 20), (50, 30), (75, 40)):
            cold.observe(float(t), float(v))
            hot.observe(float(t), float(v))
        # The hot workload's latest sample lands 25 against a bucket that
        # averages to 17.5 once it is included, so every forecast point in
        # the other buckets shifts by that +7.5 offset.
        cold.observe(100.0, 10.0)
        hot.observe(100.0, 25.0)
        for (tc, vc), (th, vh) in zip(cold.predict(75.0, 25.0), hot.predict(75.0, 25.0)):
            assert tc == th
            assert vh == pytest.approx(vc + 7.5)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(FORECASTERS))
    def test_identical_streams_identical_forecasts(self, name):
        a, b = make_forecaster(name), make_forecaster(name)
        stream = [(10.0 * k, 80.0 + 21.0 * (k % 13)) for k in range(60)]
        for t, v in stream:
            a.observe(t, v)
            b.observe(t, v)
        assert a.predict(120.0, 15.0) == b.predict(120.0, 15.0)
