"""Unit tests for the Fractal component model."""

import pytest

from repro.fractal import (
    CLIENT,
    COLLECTION,
    Component,
    CompositeBinding,
    IllegalBindingError,
    IllegalContentError,
    IllegalLifecycleError,
    InterfaceType,
    LifecycleState,
    MANDATORY,
    NoSuchAttributeError,
    NoSuchInterfaceError,
    OPTIONAL,
    SERVER,
    architecture_report,
    find_components,
    iter_components,
    verify_architecture,
)
from repro.fractal.introspection import find_by_name


class EchoContent:
    """Content recording controller hooks; answers ``ping``."""

    def __init__(self):
        self.events = []

    def attached(self, component):
        self.component = component

    def on_start(self, component):
        self.events.append("start")

    def on_stop(self, component):
        self.events.append("stop")

    def on_bind(self, component, name, server_itf):
        self.events.append(("bind", name))

    def on_unbind(self, component, name):
        self.events.append(("unbind", name))

    def on_attribute_changed(self, component, name, value):
        self.events.append(("attr", name, value))

    def ping(self, payload):
        return f"pong:{payload}"


def make_server(name="srv"):
    content = EchoContent()
    comp = Component(
        name,
        interface_types=[InterfaceType("svc", "proto", role=SERVER)],
        content=content,
    )
    return comp, content


def make_client(name="cli", contingency=MANDATORY, cardinality="singleton", dynamic=False):
    content = EchoContent()
    comp = Component(
        name,
        interface_types=[
            InterfaceType(
                "out",
                "proto",
                role=CLIENT,
                contingency=contingency,
                cardinality=cardinality,
                dynamic=dynamic,
            )
        ],
        content=content,
    )
    return comp, content


class TestInterfaceTypes:
    def test_bad_role_rejected(self):
        with pytest.raises(ValueError):
            InterfaceType("x", "sig", role="bidirectional")

    def test_bad_contingency_rejected(self):
        with pytest.raises(ValueError):
            InterfaceType("x", "sig", contingency="sometimes")

    def test_bad_cardinality_rejected(self):
        with pytest.raises(ValueError):
            InterfaceType("x", "sig", cardinality="pair")

    def test_predicates(self):
        t = InterfaceType("x", "sig", role=CLIENT, cardinality=COLLECTION)
        assert t.is_client() and not t.is_server()
        assert t.is_collection()
        assert t.is_mandatory()


class TestInvocation:
    def test_server_invocation_reaches_delegate(self):
        srv, _ = make_server()
        assert srv.get_interface("svc").invoke("ping", "a") == "pong:a"

    def test_client_invocation_forwards_to_target(self):
        srv, _ = make_server()
        cli, _ = make_client()
        cli.bind("out", srv.get_interface("svc"))
        assert cli.get_interface("out").invoke("ping", "b") == "pong:b"

    def test_unbound_client_invocation_raises(self):
        cli, _ = make_client()
        with pytest.raises(IllegalBindingError):
            cli.get_interface("out").invoke("ping", "x")


class TestBindingController:
    def test_bind_records_and_hooks(self):
        srv, _ = make_server()
        cli, content = make_client()
        instance = cli.bind("out", srv.get_interface("svc"))
        assert instance == "out"
        assert ("bind", "out") in content.events
        assert cli.binding_controller.lookup("out") is srv.get_interface("svc")

    def test_signature_mismatch_rejected(self):
        srv = Component(
            "srv",
            interface_types=[InterfaceType("svc", "other-proto", role=SERVER)],
            content=EchoContent(),
        )
        cli, _ = make_client()
        with pytest.raises(IllegalBindingError):
            cli.bind("out", srv.get_interface("svc"))

    def test_binding_to_client_interface_rejected(self):
        cli1, _ = make_client("c1")
        cli2, _ = make_client("c2")
        with pytest.raises(IllegalBindingError):
            cli1.bind("out", cli2.get_interface("out"))

    def test_binding_server_side_interface_rejected(self):
        srv, _ = make_server()
        other, _ = make_server("other")
        with pytest.raises(IllegalBindingError):
            srv.bind("svc", other.get_interface("svc"))

    def test_singleton_double_bind_rejected(self):
        srv, _ = make_server()
        cli, _ = make_client()
        cli.bind("out", srv.get_interface("svc"))
        with pytest.raises(IllegalBindingError):
            cli.bind("out", srv.get_interface("svc"))

    def test_collection_binds_many(self):
        cli, _ = make_client(cardinality=COLLECTION)
        servers = [make_server(f"s{i}")[0] for i in range(3)]
        instances = [cli.bind("out", s.get_interface("svc")) for s in servers]
        assert instances == ["out-0", "out-1", "out-2"]
        assert cli.binding_controller.bound_instances("out") == instances

    def test_collection_explicit_instance_name(self):
        cli, _ = make_client(cardinality=COLLECTION)
        srv, _ = make_server()
        assert cli.bind("out-7", srv.get_interface("svc")) == "out-7"
        with pytest.raises(IllegalBindingError):
            cli.bind("out-7", srv.get_interface("svc"))

    def test_unbind_removes_and_hooks(self):
        srv, _ = make_server()
        cli, content = make_client()
        cli.bind("out", srv.get_interface("svc"))
        cli.unbind("out")
        assert ("unbind", "out") in content.events
        assert cli.binding_controller.lookup("out") is None

    def test_unbind_unbound_rejected(self):
        cli, _ = make_client()
        with pytest.raises(IllegalBindingError):
            cli.unbind("out")

    def test_unknown_interface_rejected(self):
        cli, _ = make_client()
        srv, _ = make_server()
        with pytest.raises(NoSuchInterfaceError):
            cli.bind("nope", srv.get_interface("svc"))

    def test_static_interface_frozen_while_started(self):
        srv, _ = make_server()
        cli, _ = make_client(dynamic=False)
        cli.bind("out", srv.get_interface("svc"))
        cli.start()
        with pytest.raises(IllegalBindingError):
            cli.unbind("out")
        cli.stop()
        cli.unbind("out")  # legal once stopped

    def test_dynamic_interface_rebinds_live(self):
        cli, _ = make_client(dynamic=True, cardinality=COLLECTION)
        s1, _ = make_server("s1")
        cli.bind("out", s1.get_interface("svc"))
        cli.start()
        s2, _ = make_server("s2")
        inst = cli.bind("out", s2.get_interface("svc"))
        cli.unbind(inst)

    def test_unbind_all(self):
        cli, _ = make_client(cardinality=COLLECTION, contingency=OPTIONAL)
        for i in range(3):
            cli.bind("out", make_server(f"s{i}")[0].get_interface("svc"))
        assert cli.binding_controller.unbind_all("out") == 3
        assert cli.binding_controller.bound_instances("out") == []


class TestLifecycleController:
    def test_initial_state_stopped(self):
        srv, _ = make_server()
        assert srv.lifecycle_controller.state is LifecycleState.STOPPED

    def test_start_stop_hooks(self):
        srv, content = make_server()
        srv.start()
        srv.stop()
        assert content.events == ["start", "stop"]

    def test_start_idempotent(self):
        srv, content = make_server()
        srv.start()
        srv.start()
        assert content.events == ["start"]

    def test_mandatory_unbound_blocks_start(self):
        cli, _ = make_client(contingency=MANDATORY)
        with pytest.raises(IllegalLifecycleError):
            cli.start()

    def test_optional_unbound_allows_start(self):
        cli, _ = make_client(contingency=OPTIONAL)
        cli.start()
        assert cli.lifecycle_controller.is_started()

    def test_mandatory_collection_needs_one_binding(self):
        cli, _ = make_client(contingency=MANDATORY, cardinality=COLLECTION)
        with pytest.raises(IllegalLifecycleError):
            cli.start()
        cli.bind("out", make_server()[0].get_interface("svc"))
        cli.start()

    def test_failed_component_cannot_start(self):
        srv, _ = make_server()
        srv.lifecycle_controller.fail()
        with pytest.raises(IllegalLifecycleError):
            srv.start()
        srv.stop()  # resets FAILED -> STOPPED
        srv.start()

    def test_composite_starts_children_first(self):
        order = []

        class Tracker(EchoContent):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def on_start(self, component):
                order.append(self.tag)

        child = Component("child", content=Tracker("child"))
        root = Component("root", composite=True, content=Tracker("root"))
        root.content_controller.add(child)
        root.start()
        assert order == ["child", "root"]

    def test_composite_stops_parent_first(self):
        order = []

        class Tracker(EchoContent):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def on_stop(self, component):
                order.append(self.tag)

        child = Component("child", content=Tracker("child"))
        root = Component("root", composite=True, content=Tracker("root"))
        root.content_controller.add(child)
        root.start()
        root.stop()
        assert order == ["root", "child"]


class TestAttributeController:
    def test_declare_get_set(self):
        srv, content = make_server()
        ac = srv.attribute_controller
        ac.declare("port", 80)
        assert ac.get("port") == 80
        ac.set("port", 8080)
        assert ac.get("port") == 8080
        assert ("attr", "port", 8080) in content.events

    def test_undeclared_attribute_rejected(self):
        srv, _ = make_server()
        with pytest.raises(NoSuchAttributeError):
            srv.attribute_controller.get("nope")
        with pytest.raises(NoSuchAttributeError):
            srv.attribute_controller.set("nope", 1)

    def test_list_attributes(self):
        srv, _ = make_server()
        srv.attribute_controller.declare("b", 1)
        srv.attribute_controller.declare("a", 2)
        assert srv.attribute_controller.list_attributes() == ["a", "b"]


class TestContentController:
    def test_add_remove(self):
        root = Component("root", composite=True)
        child = Component("child", content=EchoContent())
        root.content_controller.add(child)
        assert child.parent is root
        assert root.content_controller.sub_components() == [child]
        root.content_controller.remove(child)
        assert child.parent is None

    def test_primitive_has_no_content_controller(self):
        prim = Component("p", content=EchoContent())
        with pytest.raises(IllegalContentError):
            prim.content_controller

    def test_self_containment_rejected(self):
        root = Component("root", composite=True)
        with pytest.raises(IllegalContentError):
            root.content_controller.add(root)

    def test_cycle_rejected(self):
        a = Component("a", composite=True)
        b = Component("b", composite=True)
        a.content_controller.add(b)
        with pytest.raises(IllegalContentError):
            b.content_controller.add(a)

    def test_double_containment_rejected(self):
        a = Component("a", composite=True)
        b = Component("b", composite=True)
        child = Component("c", content=EchoContent())
        a.content_controller.add(child)
        with pytest.raises(IllegalContentError):
            b.content_controller.add(child)

    def test_duplicate_names_rejected(self):
        root = Component("root", composite=True)
        root.content_controller.add(Component("x", content=EchoContent()))
        with pytest.raises(IllegalContentError):
            root.content_controller.add(Component("x", content=EchoContent()))

    def test_remove_started_child_rejected(self):
        root = Component("root", composite=True)
        child = Component("c", content=EchoContent())
        root.content_controller.add(child)
        child.start()
        with pytest.raises(IllegalContentError):
            root.content_controller.remove(child)

    def test_remove_failed_child_allowed(self):
        root = Component("root", composite=True)
        child = Component("c", content=EchoContent())
        root.content_controller.add(child)
        child.start()
        child.lifecycle_controller.fail()
        child.stop()
        root.content_controller.remove(child)


class TestCompositeBinding:
    def test_traffic_traverses_binding_component(self):
        srv, _ = make_server()
        cli, _ = make_client(contingency=OPTIONAL)
        cb = CompositeBinding("link", signature="proto")
        cb.connect(cli, "out", srv.get_interface("svc"))
        assert cli.get_interface("out").invoke("ping", "x") == "pong:x"
        assert cb.invocations == 1

    def test_disconnect(self):
        srv, _ = make_server()
        cli, _ = make_client(contingency=OPTIONAL)
        cb = CompositeBinding("link", signature="proto")
        inst = cb.connect(cli, "out", srv.get_interface("svc"))
        cb.disconnect(cli, inst)
        with pytest.raises(IllegalBindingError):
            cli.get_interface("out").invoke("ping", "x")

    def test_lan_delay_accounted(self):
        from repro.cluster import Lan

        srv, _ = make_server()
        cli, _ = make_client(contingency=OPTIONAL)
        lan = Lan()
        cb = CompositeBinding("link", signature="proto", lan=lan)
        cb.connect(cli, "out", srv.get_interface("svc"))
        cli.get_interface("out").invoke("ping", "x")
        assert cb.forwarder.simulated_delay_total > 0
        assert lan.messages_total == 1


class TestIntrospection:
    def build_tree(self):
        root = Component("root", composite=True)
        mid = Component("mid", composite=True)
        leaf1 = Component("leaf1", content=EchoContent())
        leaf2 = Component("leaf2", content=EchoContent())
        root.content_controller.add(mid)
        root.content_controller.add(leaf1)
        mid.content_controller.add(leaf2)
        return root, mid, leaf1, leaf2

    def test_iter_components_dfs(self):
        root, mid, leaf1, leaf2 = self.build_tree()
        assert [c.name for c in iter_components(root)] == [
            "root",
            "mid",
            "leaf2",
            "leaf1",
        ]

    def test_find_components(self):
        root, *_ = self.build_tree()
        leaves = find_components(root, Component.is_primitive)
        assert sorted(c.name for c in leaves) == ["leaf1", "leaf2"]

    def test_find_by_name(self):
        root, _, leaf1, _ = self.build_tree()
        assert find_by_name(root, "leaf1") is leaf1
        with pytest.raises(KeyError):
            find_by_name(root, "ghost")

    def test_architecture_report_renders_tree(self):
        root, *_ = self.build_tree()
        report = architecture_report(root)
        assert "root [composite, stopped]" in report
        assert "  mid [composite, stopped]" in report
        assert "    leaf2" in report

    def test_verify_clean_architecture(self):
        root, *_ = self.build_tree()
        assert verify_architecture(root) == []

    def test_verify_detects_unbound_mandatory(self):
        cli, _ = make_client(contingency=MANDATORY)
        # Bypass the start-time check to build a corrupt state.
        cli.lifecycle_controller._state = LifecycleState.STARTED
        problems = verify_architecture(cli)
        assert any("unbound" in p for p in problems)

    def test_verify_detects_binding_to_failed(self):
        srv, _ = make_server()
        cli, _ = make_client()
        cli.bind("out", srv.get_interface("svc"))
        srv.lifecycle_controller.fail()
        problems = verify_architecture_of_pair(cli, srv)
        assert any("failed component" in p for p in problems)


def verify_architecture_of_pair(a, b):
    root = Component("pair-root", composite=True)
    root.content_controller.add(a)
    root.content_controller.add(b)
    return verify_architecture(root)


class TestComponentBasics:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Component("")

    def test_duplicate_interface_rejected(self):
        comp = Component("c", interface_types=[InterfaceType("x", "s")])
        with pytest.raises(ValueError):
            comp.add_interface_type(InterfaceType("x", "s"))

    def test_get_missing_interface(self):
        comp = Component("c")
        with pytest.raises(NoSuchInterfaceError):
            comp.get_interface("ghost")

    def test_membrane_lookup(self):
        comp = Component("c", composite=True)
        assert comp.membrane.get("lifecycle-controller") is comp.lifecycle_controller
        assert comp.membrane.get("content-controller") is comp.content_controller
        with pytest.raises(KeyError):
            comp.membrane.get("unknown-controller")

    def test_extra_controller(self):
        comp = Component("c")
        marker = object()
        comp.membrane.add("custom", marker)
        assert comp.membrane.get("custom") is marker

    def test_name_controller(self):
        comp = Component("c")
        assert comp.name_controller.get_name() == "c"
        comp.name_controller.set_name("renamed")
        assert comp.name == "renamed"
        with pytest.raises(ValueError):
            comp.name_controller.set_name("")
