"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simulation.kernel import SimKernel, SimulationError


def test_initial_time_is_zero(kernel):
    assert kernel.now == 0.0


def test_events_run_in_time_order(kernel):
    out = []
    kernel.schedule(2.0, out.append, "b")
    kernel.schedule(1.0, out.append, "a")
    kernel.schedule(3.0, out.append, "c")
    kernel.run()
    assert out == ["a", "b", "c"]


def test_ties_break_fifo(kernel):
    out = []
    for tag in range(5):
        kernel.schedule(1.0, out.append, tag)
    kernel.run()
    assert out == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time(kernel):
    seen = []
    kernel.schedule(4.5, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [4.5]
    assert kernel.now == 4.5


def test_schedule_negative_delay_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(kernel):
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(1.0, lambda: None)


def test_cancel_prevents_execution(kernel):
    out = []
    ev = kernel.schedule(1.0, out.append, "x")
    ev.cancel()
    kernel.run()
    assert out == []


def test_cancel_is_idempotent(kernel):
    ev = kernel.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    kernel.run()


def test_run_until_stops_before_later_events(kernel):
    out = []
    kernel.schedule(1.0, out.append, "early")
    kernel.schedule(10.0, out.append, "late")
    kernel.run(until=5.0)
    assert out == ["early"]
    assert kernel.now == 5.0
    kernel.run()
    assert out == ["early", "late"]


def test_run_until_executes_events_at_boundary(kernel):
    out = []
    kernel.schedule(5.0, out.append, "boundary")
    kernel.run(until=5.0)
    assert out == ["boundary"]


def test_run_until_advances_time_when_queue_drains(kernel):
    kernel.run(until=42.0)
    assert kernel.now == 42.0


def test_events_scheduled_during_run_execute(kernel):
    out = []

    def first():
        kernel.schedule(1.0, out.append, "second")
        out.append("first")

    kernel.schedule(1.0, first)
    kernel.run()
    assert out == ["first", "second"]


def test_call_soon_runs_at_current_time(kernel):
    out = []
    kernel.schedule(3.0, lambda: kernel.call_soon(out.append, kernel.now))
    kernel.run()
    assert out == [3.0]


def test_stop_halts_run(kernel):
    out = []
    kernel.schedule(1.0, kernel.stop)
    kernel.schedule(2.0, out.append, "never")
    kernel.run()
    assert out == []
    assert kernel.pending == 1


def test_step_executes_single_event(kernel):
    out = []
    kernel.schedule(1.0, out.append, 1)
    kernel.schedule(2.0, out.append, 2)
    assert kernel.step()
    assert out == [1]
    assert kernel.step()
    assert out == [1, 2]
    assert not kernel.step()


def test_events_processed_counter(kernel):
    for _ in range(7):
        kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert kernel.events_processed == 7


def test_reentrant_run_rejected(kernel):
    def inner():
        with pytest.raises(SimulationError):
            kernel.run()

    kernel.schedule(1.0, inner)
    kernel.run()


class TestTombstones:
    """Cancelled events are skipped, discarded, and accounted for."""

    def test_cancelled_head_discarded_past_until(self, kernel):
        out = []
        late = kernel.schedule(10.0, out.append, "late")
        kernel.schedule(1.0, out.append, "early")
        late.cancel()
        kernel.run(until=5.0)
        # The tombstone sat at the heap head beyond the horizon; it must
        # still be discarded rather than left pending forever.
        assert out == ["early"]
        assert kernel.pending == 0
        assert kernel.tombstones_skipped == 1

    def test_live_event_past_until_stays_pending(self, kernel):
        kernel.schedule(10.0, lambda: None)
        kernel.run(until=5.0)
        assert kernel.pending == 1
        assert kernel.tombstones_skipped == 0

    def test_tombstones_not_counted_as_processed(self, kernel):
        events = [kernel.schedule(1.0, lambda: None) for _ in range(5)]
        for ev in events[:3]:
            ev.cancel()
        kernel.run()
        assert kernel.events_processed == 2
        assert kernel.tombstones_skipped == 3
        assert kernel.pending == 0

    def test_step_skips_tombstones(self, kernel):
        out = []
        kernel.schedule(1.0, out.append, "a").cancel()
        kernel.schedule(2.0, out.append, "b")
        assert kernel.step()
        assert out == ["b"]
        assert kernel.tombstones_skipped == 1
        assert not kernel.step()

    def test_cancel_during_run_of_same_instant(self, kernel):
        """An event cancelled by an earlier event at the same timestamp
        must not fire."""
        out = []
        victim = kernel.schedule(1.0, out.append, "victim")
        kernel.schedule(1.0, victim.cancel)
        kernel.run()
        # FIFO puts the victim first; its cancel arrives too late.
        assert out == ["victim"]
        out.clear()
        kernel2 = SimKernel()
        canceller_first = []
        victim2 = [None]

        def cancel_it():
            victim2[0].cancel()
            canceller_first.append("cancelled")

        kernel2.schedule(1.0, cancel_it)
        victim2[0] = kernel2.schedule(1.0, out.append, "victim")
        kernel2.run()
        assert out == []
        assert kernel2.tombstones_skipped == 1


class TestPeriodicTask:
    def test_fires_every_period(self, kernel):
        out = []
        kernel.every(1.0, lambda: out.append(kernel.now))
        kernel.run(until=5.5)
        assert out == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_custom_start(self, kernel):
        out = []
        kernel.every(2.0, lambda: out.append(kernel.now), start=0.5)
        kernel.run(until=5.0)
        assert out == [0.5, 2.5, 4.5]

    def test_cancel_stops_firing(self, kernel):
        out = []
        task = kernel.every(1.0, lambda: out.append(kernel.now))
        kernel.schedule(2.5, task.cancel)
        kernel.run(until=10.0)
        assert out == [1.0, 2.0]
        assert task.cancelled

    def test_cancel_from_inside_callback(self, kernel):
        task_box = []

        def tick():
            task_box[0].cancel()

        task_box.append(kernel.every(1.0, tick))
        kernel.run(until=10.0)
        assert task_box[0].fired == 1

    def test_self_cancel_schedules_no_successor(self, kernel):
        """A task that cancels itself mid-tick must not leave a pending
        reschedule behind (the queue drains completely)."""
        task_box = []
        task_box.append(kernel.every(1.0, lambda: task_box[0].cancel()))
        kernel.run(until=10.0)
        assert kernel.pending == 0
        assert task_box[0].cancelled

    def test_cancel_then_fire_same_instant(self, kernel):
        """Cancelling at exactly the task's next fire time: FIFO order puts
        the tick first, so it still fires once before stopping."""
        out = []
        task = kernel.every(1.0, lambda: out.append(kernel.now))
        kernel.schedule(1.0, task.cancel)
        kernel.run(until=5.0)
        assert out == [1.0]
        assert task.fired == 1

    def test_zero_period_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.every(0.0, lambda: None)

    def test_fired_counter(self, kernel):
        task = kernel.every(1.0, lambda: None)
        kernel.run(until=3.0)
        assert task.fired == 3


class TestFastPaths:
    """The allocation-avoiding hot paths: pooled posts, same-timestamp
    buckets, and the event freelist."""

    def test_post_orders_with_scheduled_events(self, kernel):
        """Posts and schedules at the same timestamp run in submission
        order (global FIFO, regardless of which path enqueued them)."""
        out = []
        kernel.schedule_at(1.0, out.append, "a")
        kernel.post_at(1.0, out.append, "b")
        kernel.schedule_at(1.0, out.append, "c")
        kernel.post_at(1.0, out.append, "d")
        kernel.run()
        assert out == ["a", "b", "c", "d"]

    def test_post_in_past_rejected(self, kernel):
        from repro.simulation.kernel import SimulationError

        kernel.schedule_at(5.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.post_at(1.0, lambda: None)

    def test_post_counts_as_pending_and_processed(self, kernel):
        kernel.post_in(1.0, lambda: None)
        kernel.post_in(1.0, lambda: None)
        kernel.schedule(1.0, lambda: None)
        assert kernel.pending == 3
        kernel.run()
        assert kernel.pending == 0
        assert kernel.events_processed == 3

    def test_freelist_recycles_posted_events(self, kernel):
        """Pooled events return to the freelist after firing, so a long
        chain of posts reuses a bounded set of Event objects."""
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 500:
                kernel.post_in(0.1, tick)

        kernel.post_in(0.1, tick)
        kernel.run()
        assert count[0] == 500
        assert len(kernel._freelist) >= 1
        assert len(kernel._freelist) <= 500

    def test_bucket_fifo_across_many_ties(self, kernel):
        """Hundreds of events on one timestamp drain in submission order
        through the bucket path."""
        out = []
        for i in range(300):
            kernel.schedule_at(2.0, out.append, i)
        kernel.run()
        assert out == list(range(300))

    def test_step_through_bucketed_events(self, kernel):
        """step() honours bucket order one event at a time."""
        out = []
        for i in range(5):
            kernel.schedule_at(1.0, out.append, i)
        for expect in range(5):
            assert kernel.step()
            assert out == list(range(expect + 1))
        assert not kernel.step()

    def test_cancel_inside_bucket(self, kernel):
        out = []
        kernel.schedule_at(1.0, out.append, "a")
        victim = kernel.schedule_at(1.0, out.append, "b")
        kernel.schedule_at(1.0, out.append, "c")
        victim.cancel()
        kernel.run()
        assert out == ["a", "c"]

    def test_run_until_between_bucket_and_later_events(self, kernel):
        out = []
        for i in range(3):
            kernel.schedule_at(1.0, out.append, i)
        kernel.schedule_at(2.0, out.append, "late")
        kernel.run(until=1.5)
        assert out == [0, 1, 2]
        kernel.run(until=3.0)
        assert out == [0, 1, 2, "late"]


class TestPeriodicDrift:
    def test_absolute_rescheduling_does_not_drift(self, kernel):
        """Fire times are first + k*period exactly; repeated `now + period`
        addition would accumulate float error over thousands of ticks."""
        out = []
        kernel.every(0.1, lambda: out.append(kernel.now))
        kernel.run(until=1000.05)
        assert len(out) == 10_000
        # Exact, not approx: the k-th tick is literally 0.1 + k * 0.1.
        assert out[0] == 0.1
        assert out[4999] == 0.1 + 4999 * 0.1
        assert out[-1] == 0.1 + 9999 * 0.1
        worst = max(abs(t - 0.1 * (k + 1)) for k, t in enumerate(out))
        assert worst < 1e-9
