"""Unit/integration tests for the simulated legacy servers."""

import pytest

from repro.cluster import Node, make_nodes
from repro.legacy import (
    ApacheServer,
    BackendState,
    CJdbcController,
    EndpointNotFound,
    L4Switch,
    MySqlServer,
    PlbBalancer,
    RequestFailed,
    ServerNotRunning,
    WebRequest,
    parse_jdbc_url,
)
from repro.legacy.configfiles import (
    CjdbcBackend,
    CjdbcXml,
    ConfigError,
    HttpdConf,
    MyCnf,
    PlbConf,
    Worker,
    WorkerProperties,
)


def completed(req, kernel):
    """Drain the kernel; return (ok, error)."""
    result = {}
    req.completion.add_callback(lambda s: result.update(ok=s.error is None, err=s.error))
    kernel.run()
    return result.get("ok"), result.get("err")


class TestDirectory:
    def test_register_lookup(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        server = MySqlServer(kernel, "db", node, directory)
        server.start()
        assert directory.lookup("n1", 3306) is server

    def test_lookup_missing_raises(self, directory):
        with pytest.raises(EndpointNotFound):
            directory.lookup("ghost", 1)
        assert directory.try_lookup("ghost", 1) is None

    def test_endpoint_conflict_rejected(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        a = MySqlServer(kernel, "a", node, directory)
        a.start()
        node2 = Node(kernel, "n1b")
        node2.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        b = MySqlServer(kernel, "b", node2, directory)
        # Same host is impossible (different nodes), but registering the
        # same endpoint manually must be refused.
        with pytest.raises(ValueError):
            directory.register("n1", 3306, b)

    def test_stop_releases_endpoint(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        server = MySqlServer(kernel, "db", node, directory)
        server.start()
        server.stop()
        assert directory.try_lookup("n1", 3306) is None


class TestLegacyServerLifecycle:
    def test_start_requires_config(self, kernel, directory):
        node = Node(kernel, "n1")
        server = MySqlServer(kernel, "db", node, directory)
        with pytest.raises(KeyError):
            server.start()

    def test_start_on_down_node_rejected(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        node.crash()
        with pytest.raises(ServerNotRunning):
            MySqlServer(kernel, "db", node, directory).start()

    def test_start_registers_memory_footprint(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        server = MySqlServer(kernel, "db", node, directory)
        base = node.memory_used_mb()
        server.start()
        assert node.memory_used_mb() == base + MySqlServer.footprint_mb
        server.stop()
        assert node.memory_used_mb() == base

    def test_node_crash_stops_server(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        server = MySqlServer(kernel, "db", node, directory)
        server.start()
        node.crash()
        assert not server.running
        assert directory.try_lookup("n1", 3306) is None

    def test_malformed_config_rejected(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, "[mysqld]\nport\n")
        with pytest.raises(ConfigError):
            MySqlServer(kernel, "db", node, directory).start()


class TestMySql:
    def make(self, kernel, directory):
        node = Node(kernel, "n1")
        node.fs.write(MySqlServer.CONFIG_PATH, MyCnf().render())
        server = MySqlServer(kernel, "db", node, directory)
        server.start()
        return server

    def test_read_consumes_demand(self, kernel, directory):
        db = self.make(kernel, directory)
        when = []
        db.execute_read(0.5).add_callback(lambda s: when.append(kernel.now))
        kernel.run()
        assert when == [pytest.approx(0.5)]
        assert db.reads_served == 1

    def test_read_on_stopped_server_fails(self, kernel, directory):
        db = self.make(kernel, directory)
        db.stop()
        errors = []
        db.execute_read(0.1).add_callback(lambda s: errors.append(s.error))
        kernel.run()
        assert isinstance(errors[0], ServerNotRunning)

    def test_writes_commit_in_index_order(self, kernel, directory):
        from repro.legacy.recovery_log import RecoveryLog

        db = self.make(kernel, directory)
        log = RecoveryLog()
        # Submit out of order: index 1 (short) before index 0 (long).
        e0 = log.append("w0", 1.0)
        e1 = log.append("w1", 0.1)
        order = []
        db.execute_write(e1).add_callback(lambda s: order.append(("w1", kernel.now)))
        db.execute_write(e0).add_callback(lambda s: order.append(("w0", kernel.now)))
        kernel.run()
        assert [tag for tag, _ in order] == ["w0", "w1"]
        assert db.applied_index == 2

    def test_duplicate_write_rejected(self, kernel, directory):
        from repro.legacy.recovery_log import RecoveryLog

        db = self.make(kernel, directory)
        log = RecoveryLog()
        entry = log.append("w", 0.01)
        db.execute_write(entry)
        kernel.run()
        errors = []
        db.execute_write(entry).add_callback(lambda s: errors.append(s.error))
        kernel.run()
        assert errors[0] is not None

    def test_digest_advances_per_write(self, kernel, directory):
        from repro.legacy.recovery_log import RecoveryLog

        db = self.make(kernel, directory)
        log = RecoveryLog()
        digests = [db.state_digest]
        for i in range(3):
            db.execute_write(log.append(f"w{i}", 0.01))
            kernel.run()
            digests.append(db.state_digest)
        assert len(set(digests)) == 4

    def test_direct_execute_write_and_read(self, kernel, directory):
        db = self.make(kernel, directory)
        write = WebRequest(kernel, "StoreBid", is_write=True, db_demand=0.1)
        read = WebRequest(kernel, "ViewItem", db_demand=0.1)
        db.execute(write)
        db.execute(read)
        kernel.run()
        assert db.writes_applied == 1
        assert db.reads_served == 1
        assert db.applied_index == 1


class TestCJdbc:
    def test_reads_balance_over_enabled_backends(self, kernel, lan, directory, stack):
        db2 = stack.add_mysql("mysql2")
        stack.cjdbc.attach_backend("mysql2", db2)
        kernel.run()
        for _ in range(20):
            stack.request(write=False)
        kernel.run()
        assert stack.mysql.reads_served > 0
        assert db2.reads_served > 0

    def test_writes_fan_out_to_all(self, kernel, stack):
        db2 = stack.add_mysql("mysql2")
        stack.cjdbc.attach_backend("mysql2", db2)
        kernel.run()
        for _ in range(5):
            stack.request(write=True)
        kernel.run()
        assert stack.mysql.applied_index == 5
        assert db2.applied_index == 5
        assert stack.mysql.state_digest == db2.state_digest

    def test_attach_replays_log(self, kernel, stack):
        for _ in range(10):
            stack.request(write=True)
        kernel.run()
        assert stack.cjdbc.log.next_index == 10
        db2 = stack.add_mysql("mysql2")
        handle = stack.cjdbc.attach_backend("mysql2", db2)
        assert handle.state is BackendState.SYNCING
        kernel.run()
        assert handle.state is BackendState.ENABLED
        assert db2.applied_index == 10
        assert db2.state_digest == stack.mysql.state_digest
        assert db2.replays_applied == 10
        assert stack.cjdbc.syncs_completed == 1

    def test_writes_during_sync_are_caught_up(self, kernel, stack):
        for _ in range(5):
            stack.request(write=True)
        kernel.run()
        db2 = stack.add_mysql("mysql2")
        handle = stack.cjdbc.attach_backend("mysql2", db2)
        # Issue more writes while the replay is in flight.
        for _ in range(5):
            stack.request(write=True)
        kernel.run()
        assert handle.state is BackendState.ENABLED
        assert db2.applied_index == stack.mysql.applied_index == 10
        assert db2.state_digest == stack.mysql.state_digest

    def test_detach_checkpoints_and_reattach_replays_gap(self, kernel, stack):
        db2 = stack.add_mysql("mysql2")
        stack.cjdbc.attach_backend("mysql2", db2)
        kernel.run()
        for _ in range(3):
            stack.request(write=True)
        kernel.run()
        checkpoint = stack.cjdbc.detach_backend("mysql2")
        assert checkpoint == 3
        assert stack.cjdbc.log.checkpoint("mysql2") == 3
        for _ in range(4):
            stack.request(write=True)
        kernel.run()
        handle = stack.cjdbc.attach_backend("mysql2", db2)
        kernel.run()
        assert handle.state is BackendState.ENABLED
        assert db2.replays_applied == 4  # only the gap
        assert db2.state_digest == stack.mysql.state_digest

    def test_detach_unknown_rejected(self, stack):
        with pytest.raises(KeyError):
            stack.cjdbc.detach_backend("ghost")

    def test_duplicate_attach_rejected(self, kernel, stack):
        db2 = stack.add_mysql("mysql2")
        stack.cjdbc.attach_backend("mysql2", db2)
        with pytest.raises(ValueError):
            stack.cjdbc.attach_backend("mysql2", db2)

    def test_attach_non_mysql_rejected(self, stack):
        with pytest.raises(TypeError):
            stack.cjdbc.attach_backend("bogus", stack.tomcat)

    def test_no_enabled_backend_fails_reads(self, kernel, stack):
        stack.cjdbc.detach_backend(stack.cjdbc.backends()[0].name)
        req = stack.request(write=False)
        ok, err = completed(req, kernel)
        assert ok is False
        assert isinstance(err, RequestFailed)

    def test_backend_crash_mid_sync_drops_backend(self, kernel, stack):
        for _ in range(50):
            stack.request(write=True)
        kernel.run()
        node = stack.spare_nodes[0]
        db2 = stack.add_mysql("mysql2")
        stack.cjdbc.attach_backend("mysql2", db2)
        kernel.schedule(0.05, node.crash)
        kernel.run()
        assert "mysql2" not in [b.name for b in stack.cjdbc.backends()]

    def test_write_survives_partial_backend_crash(self, kernel, stack):
        db2 = stack.add_mysql("mysql2")
        node2 = db2.node
        stack.cjdbc.attach_backend("mysql2", db2)
        kernel.run()
        # Crash one replica, then write: RAIDb-1 keeps going on survivors.
        node2.crash()
        stack.cjdbc.drop_backend("mysql2")
        req = stack.request(write=True)
        ok, _ = completed(req, kernel)
        assert ok is True

    def test_controller_requires_reachable_config_backends(self, kernel, lan, directory):
        node = Node(kernel, "cj")
        node.fs.write(
            CJdbcController.CONFIG_PATH,
            CjdbcXml(backends=[CjdbcBackend("b", "ghost", 3306)]).render(),
        )
        controller = CJdbcController(kernel, "cjdbc", node, directory, lan)
        with pytest.raises(ServerNotRunning):
            controller.start()


class TestTomcat:
    def test_jdbc_url_parsing(self):
        driver, host, port, db = parse_jdbc_url("jdbc:cjdbc://lb:25322/rubis")
        assert (driver, host, port, db) == ("cjdbc", "lb", 25322, "rubis")
        with pytest.raises(ConfigError):
            parse_jdbc_url("http://not-jdbc")

    def test_serves_request_through_db(self, kernel, stack):
        req = stack.request()
        ok, _ = completed(req, kernel)
        assert ok is True
        assert "tomcat1" in req.hops
        assert "cjdbc" in req.hops
        assert req.latency > 0.03  # app 12 ms + db 20 ms + hops

    def test_no_db_demand_skips_database(self, kernel, stack):
        req = WebRequest(kernel, "Home", app_demand_pre=0.01, db_demand=0.0)
        stack.tomcat.handle(req)
        ok, _ = completed(req, kernel)
        assert ok is True
        assert "cjdbc" not in req.hops

    def test_dead_datasource_fails_request(self, kernel, stack):
        stack.cjdbc.stop()
        req = stack.request()
        ok, err = completed(req, kernel)
        assert ok is False
        assert "connection refused" in str(err)

    def test_stopped_tomcat_fails_request(self, kernel, stack):
        req = WebRequest(kernel, "ViewItem", db_demand=0.01)
        stack.tomcat.stop()
        stack.tomcat.handle(req)
        ok, _ = completed(req, kernel)
        assert ok is False


class TestPlb:
    def test_balances_round_robin(self, kernel, stack):
        t2 = stack.add_tomcat("tomcat2")
        conf = PlbConf.parse(stack.n_plb.fs.read(PlbBalancer.CONFIG_PATH))
        conf.servers.append((t2.node.name, 8080))
        stack.n_plb.fs.write(PlbBalancer.CONFIG_PATH, conf.render())
        stack.plb.reload()
        for _ in range(10):
            stack.request()
        kernel.run()
        assert stack.tomcat.served == 5
        assert t2.served == 5

    def test_skips_dead_backend(self, kernel, stack):
        t2 = stack.add_tomcat("tomcat2")
        conf = PlbConf.parse(stack.n_plb.fs.read(PlbBalancer.CONFIG_PATH))
        conf.servers.append((t2.node.name, 8080))
        stack.n_plb.fs.write(PlbBalancer.CONFIG_PATH, conf.render())
        stack.plb.reload()
        t2.node.crash()
        oks = []
        for _ in range(6):
            req = stack.request()
            req.completion.add_callback(lambda s: oks.append(s.error is None))
        kernel.run()
        assert oks == [True] * 6
        assert stack.plb.retries > 0

    def test_all_backends_dead_fails(self, kernel, stack):
        stack.tomcat.stop()
        req = stack.request()
        ok, err = completed(req, kernel)
        assert ok is False
        assert "no live backend" in str(err)

    def test_reload_requires_running(self, kernel, stack):
        stack.plb.stop()
        with pytest.raises(ServerNotRunning):
            stack.plb.reload()


class TestApacheAndL4:
    def build_web_tier(self, kernel, lan, directory, stack):
        nodes = make_nodes(kernel, 2, prefix="web")
        apaches = []
        for node in nodes:
            node.fs.write(ApacheServer.CONFIG_PATH, HttpdConf().render())
            node.fs.write(
                "/etc/apache/worker.properties",
                WorkerProperties([Worker("w1", stack.n_tc.name, 8009)]).render(),
            )
            apache = ApacheServer(kernel, f"apache-{node.name}", node, directory, lan)
            apache.start()
            apaches.append(apache)
        switch = L4Switch(kernel, "l4", directory, lan)
        for node in nodes:
            switch.add_endpoint(node.name, 80)
        return apaches, switch

    def test_static_served_locally(self, kernel, lan, directory, stack):
        apaches, switch = self.build_web_tier(kernel, lan, directory, stack)
        req = WebRequest(kernel, "logo.png", is_static=True, static_demand=0.002)
        switch.handle(req)
        ok, _ = completed(req, kernel)
        assert ok is True
        assert sum(a.static_served for a in apaches) == 1
        assert stack.tomcat.served == 0

    def test_dynamic_forwarded_via_modjk(self, kernel, lan, directory, stack):
        apaches, switch = self.build_web_tier(kernel, lan, directory, stack)
        req = WebRequest(
            kernel, "ViewItem", app_demand_pre=0.01, app_demand_post=0.001,
            db_demand=0.01,
        )
        switch.handle(req)
        ok, _ = completed(req, kernel)
        assert ok is True
        assert stack.tomcat.served == 1

    def test_l4_balances_over_apaches(self, kernel, lan, directory, stack):
        apaches, switch = self.build_web_tier(kernel, lan, directory, stack)
        for _ in range(8):
            req = WebRequest(kernel, "x", is_static=True, static_demand=0.001)
            switch.handle(req)
        kernel.run()
        assert apaches[0].static_served == 4
        assert apaches[1].static_served == 4

    def test_l4_skips_crashed_apache(self, kernel, lan, directory, stack):
        apaches, switch = self.build_web_tier(kernel, lan, directory, stack)
        apaches[0].node.crash()
        oks = []
        for _ in range(4):
            req = WebRequest(kernel, "x", is_static=True, static_demand=0.001)
            switch.handle(req)
            req.completion.add_callback(lambda s: oks.append(s.error is None))
        kernel.run()
        assert oks == [True] * 4

    def test_l4_all_dead_drops(self, kernel, lan, directory, stack):
        apaches, switch = self.build_web_tier(kernel, lan, directory, stack)
        for apache in apaches:
            apache.node.crash()
        req = WebRequest(kernel, "x", is_static=True, static_demand=0.001)
        switch.handle(req)
        ok, _ = completed(req, kernel)
        assert ok is False
        assert switch.dropped == 1

    def test_no_workers_fails_dynamic(self, kernel, lan, directory, stack):
        apaches, switch = self.build_web_tier(kernel, lan, directory, stack)
        stack.tomcat.stop()
        req = WebRequest(kernel, "ViewItem", app_demand_pre=0.01, db_demand=0.01)
        switch.handle(req)
        ok, err = completed(req, kernel)
        assert ok is False
        assert "no live AJP worker" in str(err)

    def test_duplicate_endpoint_rejected(self, kernel, directory):
        switch = L4Switch(kernel, "l4", directory)
        switch.add_endpoint("h", 80)
        with pytest.raises(ValueError):
            switch.add_endpoint("h", 80)
