"""Tests for deploying the administration software itself via ADL (§3.3:
"Jade administrates itself")."""

import pytest

from repro.fractal import architecture_report, parse_adl, verify_architecture
from repro.jade.control_loop import InhibitionLock
from repro.jade.deployment import DeploymentService
from repro.jade.manager_adl import (
    SELF_OPTIMIZATION_ADL,
    finalize_manager,
    management_factory_registry,
)
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import PiecewiseProfile


@pytest.fixture
def base_system():
    """A managed J2EE application WITHOUT its optimizer — the manager will
    be deployed separately, from its own ADL document."""
    profile = PiecewiseProfile([(0.0, 80), (60.0, 300)], duration_s=900.0)
    return ManagedSystem(
        ExperimentConfig(profile=profile, seed=13, managed=False, tail_s=30.0)
    )


def deploy_manager(system):
    inhibition = InhibitionLock(system.kernel, 60.0)
    deployer = DeploymentService(
        system.kernel,
        management_factory_registry(),
        system.cluster,
        system.directory,
        installer=None,
        lan=system.lan,
        extra_context={
            "tiers": {
                "application": system.app_tier,
                "database": system.db_tier,
            },
            "inhibition": inhibition,
            "calibration": system.config.calibration,
        },
    )
    manager = deployer.deploy(parse_adl(SELF_OPTIMIZATION_ADL))
    finalize_manager(manager)
    return manager


class TestManagerDeployment:
    def test_structure(self, base_system):
        manager = deploy_manager(base_system)
        names = sorted(c.name for c in manager.root.content_controller.sub_components())
        assert names == [
            "app-actuator",
            "app-reactor",
            "app-sensor",
            "db-actuator",
            "db-reactor",
            "db-sensor",
        ]
        assert verify_architecture(manager.root) == []

    def test_all_on_one_jade_node(self, base_system):
        manager = deploy_manager(base_system)
        nodes = {n.name for n in manager.nodes.values()}
        assert len(nodes) == 1  # the virtual-node pinned everything together

    def test_bindings_visible(self, base_system):
        manager = deploy_manager(base_system)
        report = architecture_report(manager.root)
        assert "notify -> db-reactor.readings" in report
        assert "actuate -> db-actuator.resize" in report

    def test_unknown_tier_rejected(self, base_system):
        bad = SELF_OPTIMIZATION_ADL.replace(
            '<attribute name="tier" value="database"/>',
            '<attribute name="tier" value="storage"/>',
        )
        deployer = DeploymentService(
            base_system.kernel,
            management_factory_registry(),
            base_system.cluster,
            base_system.directory,
            extra_context={
                "tiers": {"application": base_system.app_tier},
                "inhibition": InhibitionLock(base_system.kernel, 60.0),
            },
        )
        with pytest.raises(ValueError):
            deployer.deploy(parse_adl(bad))


class TestManagerBehaviour:
    def test_adl_deployed_manager_scales_the_system(self, base_system):
        manager = deploy_manager(base_system)
        manager.start()
        col = base_system.run()
        manager.stop()
        # The DB tier scaled under the 300-client step, driven purely by
        # components instantiated from the ADL document.
        assert base_system.db_tier.grows_completed >= 1
        assert col.tier_replicas["database"].max() >= 2

    def test_stopped_manager_is_inert(self, base_system):
        manager = deploy_manager(base_system)  # never started
        base_system.run()
        assert base_system.db_tier.grows_completed == 0


class TestFinalizeErrors:
    def test_unbound_actuate_rejected(self, base_system):
        bad = SELF_OPTIMIZATION_ADL.replace(
            '<binding client="db-reactor.actuate" server="db-actuator.resize"/>',
            "",
        )
        deployer = DeploymentService(
            base_system.kernel,
            management_factory_registry(),
            base_system.cluster,
            base_system.directory,
            extra_context={
                "tiers": {
                    "application": base_system.app_tier,
                    "database": base_system.db_tier,
                },
                "inhibition": InhibitionLock(base_system.kernel, 60.0),
            },
        )
        manager = deployer.deploy(parse_adl(bad))
        with pytest.raises(ValueError):
            finalize_manager(manager)

    def test_unfed_reactor_rejected(self, base_system):
        bad = SELF_OPTIMIZATION_ADL.replace(
            '<binding client="db-sensor.notify" server="db-reactor.readings"/>',
            '<binding client="db-sensor.notify" server="app-reactor.readings"/>',
        )
        deployer = DeploymentService(
            base_system.kernel,
            management_factory_registry(),
            base_system.cluster,
            base_system.directory,
            extra_context={
                "tiers": {
                    "application": base_system.app_tier,
                    "database": base_system.db_tier,
                },
                "inhibition": InhibitionLock(base_system.kernel, 60.0),
            },
        )
        manager = deployer.deploy(parse_adl(bad))
        with pytest.raises(ValueError):
            finalize_manager(manager)
