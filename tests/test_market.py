"""Tests for the heterogeneous node market: catalog, spot price process,
cost-aware fleet allocator, market engine, spot-interruption chaos and
the fleet-cost scorecard."""

import dataclasses
import pickle

import pytest

from repro.chaos import campaign_config, score_run as chaos_score_run
from repro.chaos.campaign import PRESETS as CHAOS_PRESETS
from repro.cluster import ClusterManager, Node
from repro.jade.system import ManagedSystem
from repro.market import (
    DEFAULT_CATALOG,
    PRESETS,
    InstanceType,
    MarketScenario,
    SpotMarket,
    by_name,
    market_config,
    price_book,
)
from repro.market.allocator import FleetAllocator
from repro.market.costs import (
    score_scenario,
    score_uniform_run,
    scorecard_json,
    uniform_fleet_cost,
)
from repro.market.engine import MarketEngine
from repro.runner import CompletedRun, ExperimentRunner, ResultCache
from repro.simulation.rng import RngStreams


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_cpu_capacity_scales_with_factor(self):
        itype = InstanceType("x", vcpus=2, cpu_factor=1.3)
        assert itype.cpu_capacity == pytest.approx(2.6)

    def test_price_per_effective_vcpu(self):
        itype = InstanceType("x", vcpus=2, hourly_price=1.9)
        assert itype.price_per_effective_vcpu() == pytest.approx(0.95)
        assert itype.price_per_effective_vcpu(0.6) == pytest.approx(0.3)

    def test_spot_mean_price(self):
        itype = InstanceType("x", vcpus=1, hourly_price=2.0, spot=True,
                             spot_fraction=0.25)
        assert itype.spot_mean_price == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceType("x", vcpus=0)
        with pytest.raises(ValueError):
            InstanceType("x", vcpus=1, hourly_price=0.0)
        with pytest.raises(ValueError):
            InstanceType("x", vcpus=1, spot_fraction=0.0)

    def test_by_name_rejects_duplicates(self):
        a = InstanceType("same", vcpus=1)
        with pytest.raises(ValueError):
            by_name((a, a))

    def test_price_book_sorted(self):
        book = price_book(DEFAULT_CATALOG)
        assert [name for name, _ in book] == sorted(n for n, _ in book)
        assert dict(book)["std.small"] == pytest.approx(1.0)

    def test_baseline_matches_uniform_rate(self):
        # std.small at 1.0/h is the calibrated machine: a pure on-demand
        # catalog fleet prices like the paper's flat node_hour_cost.
        base = by_name(DEFAULT_CATALOG)["std.small"]
        assert base.hourly_price == pytest.approx(1.0)
        assert base.cpu_capacity == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Scenario values
# ----------------------------------------------------------------------
class TestScenario:
    def test_presets_frozen_and_picklable(self):
        for make in PRESETS.values():
            scenario = make()
            clone = pickle.loads(pickle.dumps(scenario))
            assert clone == scenario
            with pytest.raises(dataclasses.FrozenInstanceError):
                scenario.policy = "other"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MarketScenario("x", policy="yolo")

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            MarketScenario("x", sizes=("mega.huge",))

    def test_reserve_floor_enforced(self):
        with pytest.raises(ValueError):
            MarketScenario("x", reserve_nodes=2)

    def test_market_config_attaches_scenario(self):
        scenario = PRESETS["spot-heavy"]()
        cfg = market_config(scenario, seed=7)
        assert cfg.market == scenario
        assert cfg.recovery and cfg.managed
        assert cfg.seed == 7


# ----------------------------------------------------------------------
# Spot price process
# ----------------------------------------------------------------------
def _market(kernel, scenario, seed=1):
    return SpotMarket(kernel, scenario, RngStreams(seed).get("market"))


class TestSpotMarket:
    def test_same_seed_same_tape(self, kernel):
        scenario = PRESETS["volatile"]()
        a = _market(kernel, scenario, seed=5)
        b = _market(kernel, scenario, seed=5)
        a.start()
        b.start()
        kernel.run(until=600.0)
        assert a.history == b.history
        assert a.ticks == 20

    def test_different_seeds_differ(self, kernel):
        scenario = PRESETS["volatile"]()
        a = _market(kernel, scenario, seed=1)
        b = _market(kernel, scenario, seed=2)
        a.start()
        b.start()
        kernel.run(until=300.0)
        assert a.history != b.history

    def test_price_clamped_to_on_demand(self, kernel):
        scenario = dataclasses.replace(
            PRESETS["volatile"](), volatility=2.0, reversion=0.0
        )
        market = _market(kernel, scenario)
        market.start()
        kernel.run(until=3000.0)
        base = by_name(DEFAULT_CATALOG)["std.small"]
        for _, price in market.history["std.small"]:
            assert 0.02 * base.hourly_price <= price <= base.hourly_price

    def test_on_demand_price_flat(self, kernel):
        market = _market(kernel, PRESETS["balanced"]())
        assert market.price("std.small", market="on-demand") == 1.0

    def test_integrate_piecewise(self, kernel):
        market = _market(kernel, PRESETS["balanced"]())
        market.history["std.small"] = [(0.0, 0.5), (1800.0, 1.0)]
        # 0.5/h for half an hour + 1.0/h for half an hour
        assert market.integrate("std.small", "spot", 0.0, 3600.0) == (
            pytest.approx(0.75)
        )
        assert market.integrate("std.small", "on-demand", 0.0, 1800.0) == (
            pytest.approx(0.5)
        )
        assert market.integrate("std.small", "spot", 10.0, 10.0) == 0.0


# ----------------------------------------------------------------------
# Fleet allocator
# ----------------------------------------------------------------------
def _allocator(kernel, scenario):
    market = _market(kernel, scenario)
    cluster = ClusterManager([])

    def make_node(name, itype, node_market):
        return Node(kernel, name, instance=itype, market=node_market)

    return FleetAllocator(kernel, scenario, market, cluster, make_node)


class TestFleetAllocator:
    def test_on_demand_policy_never_offers_spot(self, kernel):
        alloc = _allocator(kernel, PRESETS["on-demand"]())
        assert all(o.market == "on-demand" for o in alloc.offers())
        mix = alloc.choose_mix(5.0)
        assert len(mix) == 5
        assert all(o.market == "on-demand" for o in mix)

    def test_spot_heavy_mix_respects_floor(self, kernel):
        scenario = PRESETS["spot-heavy"]()
        alloc = _allocator(kernel, scenario)
        mix = alloc.choose_mix(8.0)
        od = sum(o.itype.cpu_capacity for o in mix if o.market == "on-demand")
        spot = sum(o.itype.cpu_capacity for o in mix if o.market == "spot")
        total = od + spot
        assert total >= 8.0
        assert od >= scenario.on_demand_floor * total - 1e-9
        assert spot > 0  # cheap spot capacity is actually used

    def test_provision_stocks_the_pool(self, kernel):
        alloc = _allocator(kernel, PRESETS["balanced"]())
        node = alloc.provision(by_name(DEFAULT_CATALOG)["std.small"], "spot")
        assert alloc.cluster.free_count == 1
        assert node.market == "spot"
        assert alloc.live_capacity() == (0.0, 1.0)

    def test_boot_delay_defers_join(self, kernel):
        scenario = dataclasses.replace(PRESETS["balanced"](), boot_s=30.0)
        alloc = _allocator(kernel, scenario)
        alloc.provision(by_name(DEFAULT_CATALOG)["std.small"], "on-demand")
        assert alloc.cluster.free_count == 0
        kernel.run(until=31.0)
        assert alloc.cluster.free_count == 1

    def test_retire_excess_prefers_most_expensive(self, kernel):
        alloc = _allocator(kernel, PRESETS["balanced"]())
        base = by_name(DEFAULT_CATALOG)["std.small"]
        alloc.provision(base, "on-demand")
        alloc.provision(base, "on-demand")
        alloc.provision(base, "spot")
        kernel.run(until=10.0)
        # On-demand (1.0/h) beats spot (0.3/h mean) per vCPU, and the
        # 50 % floor still holds after (od 1 / total 2) — so it goes.
        retired = alloc.retire_excess(1.0)
        assert [n.market for n in retired] == ["on-demand"]
        od, spot = alloc.live_capacity()
        assert (od, spot) == (1.0, 1.0)

    def test_retire_excess_never_sinks_the_floor(self, kernel):
        alloc = _allocator(kernel, PRESETS["balanced"]())
        base = by_name(DEFAULT_CATALOG)["std.small"]
        alloc.provision(base, "on-demand")
        alloc.provision(base, "spot")
        kernel.run(until=10.0)
        # The on-demand node is the priciest, but retiring it would drop
        # the floor to 0/1 < 50 % — so the spot node goes instead.
        retired = alloc.retire_excess(1.0)
        assert [n.market for n in retired] == ["spot"]
        od, spot = alloc.live_capacity()
        assert (od, spot) == (1.0, 0.0)

    def test_retire_excess_skips_oversized_nodes(self, kernel):
        scenario = dataclasses.replace(
            PRESETS["on-demand"](), sizes=("std.large",)
        )
        alloc = _allocator(kernel, scenario)
        alloc.provision(by_name(DEFAULT_CATALOG)["std.large"], "on-demand")
        # excess of 1 vCPU cannot be satisfied by retiring a 2-vCPU box
        assert alloc.retire_excess(1.0) == []
        assert alloc.cluster.free_count == 1

    def test_fleet_cost_integrates_flat_on_demand(self, kernel):
        alloc = _allocator(kernel, PRESETS["on-demand"]())
        node = alloc.provision(by_name(DEFAULT_CATALOG)["std.small"], "on-demand")
        kernel.run(until=1800.0)
        alloc.retire(node, reason="scale-down")
        kernel.run(until=7200.0)
        # held half an hour at 1.0/h, nothing after retirement
        assert alloc.fleet_cost() == pytest.approx(0.5)
        assert alloc.node_seconds() == pytest.approx(1800.0)
        prov = alloc.provisions[0].as_dict()
        assert prov["reason"] == "scale-down"
        assert prov["t1"] == pytest.approx(1800.0)

    def test_close_is_idempotent(self, kernel):
        alloc = _allocator(kernel, PRESETS["on-demand"]())
        node = alloc.provision(by_name(DEFAULT_CATALOG)["std.small"], "on-demand")
        kernel.run(until=60.0)
        alloc.retire(node)
        t1 = alloc.provisions[0].t1
        kernel.run(until=120.0)
        alloc.close(node.name, reason="other")
        assert alloc.provisions[0].t1 == t1  # unchanged


# ----------------------------------------------------------------------
# Market engine on the full managed system
# ----------------------------------------------------------------------
def _run_market(scenario, seed=1, scale=0.1):
    system = ManagedSystem(market_config(scenario, seed=seed, scale=scale))
    system.run()
    return system


class TestMarketEngine:
    def test_initial_fleet_reserves_on_demand_core(self, kernel):
        scenario = PRESETS["spot-heavy"]()
        engine = MarketEngine(
            kernel, scenario, RngStreams(1),
            lambda name, itype, market: Node(
                kernel, name, instance=itype, market=market
            ),
            pool_vcpus=7.0,
        )
        od, spot = engine.allocator.live_capacity()
        assert od >= 4.0  # the reserve: balancers + one replica per tier
        assert od + spot == pytest.approx(7.0)
        # FIFO hands the reserve out first
        first = engine.cluster.allocate("tier:app")
        assert first.market == "on-demand"

    def test_ramp_provisions_and_retires(self):
        system = _run_market(PRESETS["spot-heavy"]())
        engine = system.market
        actions = [r["action"] for r in engine.rebalances]
        assert "initial" in actions and "provision" in actions
        assert "retire" in actions  # the ramp came back down
        assert engine.fleet_cost() > 0
        # balancers never sat on spot capacity
        for comp in (system.plb, system.cjdbc):
            assert system.app.node_of(comp).market == "on-demand"

    def test_interrupt_drains_and_reclaims(self):
        # Force an interruption deterministically via engine.interrupt on
        # an allocated spot node mid-run.
        scenario = dataclasses.replace(
            PRESETS["spot-heavy"](), interruption_hazard_per_hour=0.0
        )
        system = ManagedSystem(market_config(scenario, seed=1, scale=0.1))

        state = {}

        def fire():
            engine = system.market
            spot_allocated = [
                n for n in engine.cluster.allocated_nodes()
                if n.market == "spot"
            ]
            if not spot_allocated:  # try again when the ramp is higher
                system.kernel.schedule(10.0, fire)
                return
            node = spot_allocated[0]
            state["node"] = node
            state["deadline"] = engine.interrupt(node)

        system.kernel.schedule_at(150.0, fire)
        system.run()

        engine = system.market
        node = state["node"]
        assert not node.up  # reclaimed at the deadline
        assert state["deadline"] == pytest.approx(
            engine.interruptions[0]["t"] + scenario.notice_s
        )
        prov = next(
            p for p in engine.allocator.provisions if p.node_name == node.name
        )
        assert prov.reason == "spot-reclaim"
        # the drain repaired the replica: a grow landed after the notice
        repairs = [
            (t, d) for t, d in system.collector.reconfigurations
            if "repair:" in d and node.name in d
        ]
        assert repairs, "interrupted replica was not drained"

    def test_interrupted_free_node_not_allocated(self, kernel):
        scenario = PRESETS["spot-heavy"]()
        engine = MarketEngine(
            kernel, scenario, RngStreams(1),
            lambda name, itype, market: Node(
                kernel, name, instance=itype, market=market
            ),
            pool_vcpus=7.0,
        )
        victim = next(
            n for n in engine.cluster.free_nodes() if n.market == "spot"
        )
        engine.interrupt(victim)
        assert victim not in engine.cluster.free_nodes()
        assert engine.interrupt(victim) == engine.interruptions[0]["deadline"]
        assert len(engine.interruptions) == 1  # dedup

    def test_volatile_run_survives_reclaims(self):
        system = _run_market(PRESETS["volatile"](), scale=0.1)
        engine = system.market
        assert len(engine.interruptions) >= 1
        reclaims = [
            p for p in engine.allocator.provisions
            if p.reason == "spot-reclaim"
        ]
        assert reclaims
        col = system.collector
        attempted = col.completed_requests + col.failed_requests
        assert col.completed_requests / attempted > 0.98


# ----------------------------------------------------------------------
# Spot interruptions through the chaos subsystem
# ----------------------------------------------------------------------
class TestSpotChaos:
    def test_spot_campaign_on_uniform_pool_repairs(self):
        # No market attached: the fault's standalone path drains, crashes
        # at the deadline and the MTTR scorecard pairs the repair.
        campaign = CHAOS_PRESETS["spot"]()
        config = campaign_config(campaign, seed=1, clients=60,
                                 duration_s=480.0)
        system = ManagedSystem(config)
        system.run()
        run = CompletedRun.from_system(system, 0.0)
        assert run.chaos.faults_injected == 1
        card = chaos_score_run(run)
        assert card["disruptions"] == 1
        assert card["repairs_completed"] == 1
        assert card["mttr_mean_s"] == card["mttr_mean_s"]  # not NaN

    def test_spot_campaign_routes_through_market_engine(self):
        campaign = CHAOS_PRESETS["spot"]()
        scenario = dataclasses.replace(
            PRESETS["spot-heavy"](), interruption_hazard_per_hour=0.0
        )
        config = dataclasses.replace(
            campaign_config(campaign, seed=1, clients=60, duration_s=480.0),
            market=scenario,
        )
        system = ManagedSystem(config)
        system.run()
        engine = system.market
        assert [e["source"] for e in engine.interruptions] == ["chaos"]
        run = CompletedRun.from_system(system, 0.0)
        assert run.chaos.faults_injected == 1
        card = chaos_score_run(run)
        assert card["repairs_completed"] >= 1


# ----------------------------------------------------------------------
# Scorecard and runner integration
# ----------------------------------------------------------------------
class TestScorecard:
    def test_uniform_baseline_cost(self):
        cfg = market_config(PRESETS["spot-heavy"](), scale=0.1)
        expected = cfg.pool_nodes * (
            cfg.profile.duration_s + cfg.tail_s
        ) / 3600.0
        assert uniform_fleet_cost(cfg) == pytest.approx(expected)

    def test_savings_and_slo_parity(self):
        scenario = PRESETS["spot-heavy"]()
        runner = ExperimentRunner(parallel=False, cache=None)
        cfg = market_config(scenario, seed=1, scale=0.1)
        runs = runner.run_many({
            "market": cfg,
            "uniform": dataclasses.replace(cfg, market=None),
        })
        card = score_scenario(scenario, [runs["market"]])
        uniform = score_uniform_run(runs["uniform"])
        row = card["per_seed"][0]
        assert row["savings_pct"] > 15.0
        assert row["slo_violation_s"] <= uniform["slo_violation_s"] + 10.0
        assert row["spot_share"] > 0.0
        assert row["held_node_hours_by_owner"]  # tiers accrued hold time

    def test_completed_run_market_stats_picklable(self):
        system = _run_market(PRESETS["spot-heavy"](), scale=0.1)
        run = CompletedRun.from_system(system, 0.0)
        clone = pickle.loads(pickle.dumps(run))
        assert clone.market.scenario == "spot-heavy"
        assert clone.market.fleet_cost == pytest.approx(
            system.market.fleet_cost()
        )
        assert clone.market.provisions  # the ledger survived the pickle

    def test_scorecard_identical_serial_parallel_cached(self, tmp_path):
        scenario = PRESETS["spot-heavy"]()
        seeds = (1, 2)

        def card(runner):
            runs = runner.run_many({
                f"m-s{seed}": market_config(scenario, seed=seed, scale=0.1)
                for seed in seeds
            })
            return scorecard_json(
                score_scenario(
                    scenario, [runs[f"m-s{s}"] for s in seeds]
                )
            )

        serial = card(ExperimentRunner(parallel=False, cache=None))
        cache = ResultCache(tmp_path / "cache")
        parallel = card(ExperimentRunner(parallel=True, cache=cache))
        assert cache.misses == len(seeds)
        warm_cache = ResultCache(tmp_path / "cache")
        cached = card(ExperimentRunner(parallel=True, cache=warm_cache))
        assert warm_cache.hits == len(seeds)
        assert serial == parallel
        assert serial == cached
