"""Tests for the metrics containers, aggregates and collector."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    MetricsCollector,
    MovingAverage,
    StepSeries,
    TimeSeries,
    spatial_average,
    summarize,
)


class TestTimeSeries:
    def test_append_and_arrays(self):
        s = TimeSeries("x")
        s.append(1.0, 10.0)
        s.append(2.0, 20.0)
        assert list(s.times) == [1.0, 2.0]
        assert list(s.values) == [10.0, 20.0]
        assert len(s) == 2
        assert s.last() == (2.0, 20.0)

    def test_non_monotonic_rejected(self):
        s = TimeSeries()
        s.append(5.0, 1.0)
        with pytest.raises(ValueError):
            s.append(4.0, 1.0)

    def test_bucket_mean(self):
        s = TimeSeries()
        for t in range(10):
            s.append(float(t), float(t))
        b = s.bucket_mean(5.0)
        assert len(b) == 2
        assert list(b.values) == [2.0, 7.0]
        assert list(b.times) == [2.5, 7.5]

    def test_bucket_mean_skips_empty(self):
        s = TimeSeries()
        s.append(0.0, 1.0)
        s.append(20.0, 3.0)
        b = s.bucket_mean(5.0)
        assert len(b) == 2

    def test_bucket_bad_width(self):
        with pytest.raises(ValueError):
            TimeSeries().bucket_mean(0.0)

    def test_window(self):
        s = TimeSeries()
        for t in range(10):
            s.append(float(t), float(t))
        w = s.window(3.0, 6.0)
        assert list(w.times) == [3.0, 4.0, 5.0]

    def test_stats_on_empty(self):
        s = TimeSeries()
        assert math.isnan(s.mean())
        assert math.isnan(s.max())
        assert s.last() is None


class TestStepSeries:
    def test_value_at(self):
        s = StepSeries(initial=1.0)
        s.set(10.0, 2.0)
        s.set(20.0, 3.0)
        assert s.value_at(5.0) == 1.0
        assert s.value_at(10.0) == 2.0
        assert s.value_at(15.0) == 2.0
        assert s.value_at(25.0) == 3.0

    def test_no_op_set_not_recorded(self):
        s = StepSeries(initial=1.0)
        s.set(10.0, 1.0)
        assert len(s) == 1

    def test_non_monotonic_rejected(self):
        s = StepSeries()
        s.set(10.0, 1.0)
        with pytest.raises(ValueError):
            s.set(5.0, 2.0)

    def test_sample_vectorized(self):
        s = StepSeries(initial=0.0)
        s.set(10.0, 5.0)
        out = s.sample(np.array([0.0, 9.9, 10.0, 99.0]))
        assert list(out) == [0.0, 0.0, 5.0, 5.0]

    def test_time_weighted_mean(self):
        s = StepSeries(initial=1.0)
        s.set(10.0, 3.0)
        # 10 s at 1 + 10 s at 3 over [0, 20] -> mean 2
        assert s.time_weighted_mean(20.0) == pytest.approx(2.0)

    def test_max(self):
        s = StepSeries(initial=1.0)
        s.set(1.0, 7.0)
        s.set(2.0, 3.0)
        assert s.max() == 7.0


class TestMovingAverage:
    def test_basic_average(self):
        ma = MovingAverage(10.0)
        assert ma.add(0.0, 1.0) == pytest.approx(1.0)
        assert ma.add(1.0, 3.0) == pytest.approx(2.0)

    def test_eviction_outside_window(self):
        ma = MovingAverage(10.0)
        ma.add(0.0, 100.0)
        assert ma.add(11.0, 2.0) == pytest.approx(2.0)
        assert ma.sample_count == 1

    def test_boundary_sample_evicted(self):
        ma = MovingAverage(10.0)
        ma.add(0.0, 100.0)
        # sample at exactly now - window is evicted (half-open window)
        assert ma.add(10.0, 2.0) == pytest.approx(2.0)

    def test_nan_when_empty(self):
        assert math.isnan(MovingAverage(5.0).value)

    def test_reset(self):
        ma = MovingAverage(5.0)
        ma.add(0.0, 1.0)
        ma.reset()
        assert ma.sample_count == 0
        assert math.isnan(ma.value)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            MovingAverage(0.0)

    @given(
        samples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=1,
            max_size=60,
        ),
        window=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_computation(self, samples, window):
        """The O(1) incremental MA equals the naive windowed mean."""
        samples = sorted(samples)
        ma = MovingAverage(window)
        for i, (t, v) in enumerate(samples):
            got = ma.add(t, v)
            # Oracle: samples appended so far whose age is within the window
            # (strictly: tt > now - window, matching the half-open window).
            expect = [vv for tt, vv in samples[: i + 1] if tt > t - window]
            assert got == pytest.approx(np.mean(expect))

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_input_range(self, values):
        ma = MovingAverage(1000.0)
        for i, v in enumerate(values):
            out = ma.add(float(i), v)
        assert min(values) - 1e-12 <= out <= max(values) + 1e-12


class TestAggregates:
    def test_spatial_average(self):
        assert spatial_average([0.2, 0.4]) == pytest.approx(0.3)
        assert math.isnan(spatial_average([]))

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["max"] == 4.0
        assert stats["p50"] == pytest.approx(2.5)

    def test_summarize_empty(self):
        stats = summarize([])
        assert stats["count"] == 0
        assert math.isnan(stats["mean"])


class TestCollector:
    def test_latency_recording(self):
        c = MetricsCollector()
        c.record_latency(1.0, 0.1)
        c.record_latency(2.0, 0.3)
        assert c.completed_requests == 2
        assert c.latency_summary()["mean"] == pytest.approx(0.2)

    def test_throughput(self):
        c = MetricsCollector()
        for t in range(100):
            c.record_latency(float(t), 0.01)
        assert c.throughput(0.0, 100.0) == pytest.approx(1.0)
        assert c.throughput(0.0, 50.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            c.throughput(10.0, 10.0)

    def test_error_rate(self):
        c = MetricsCollector()
        c.record_latency(1.0, 0.1)
        c.record_failure(2.0)
        assert c.error_rate() == pytest.approx(0.5)
        assert MetricsCollector().error_rate() == 0.0

    def test_replica_tracking(self):
        c = MetricsCollector()
        c.record_replicas("db", 0.0, 1)
        c.record_replicas("db", 10.0, 2)
        c.record_replicas("db", 20.0, 1)
        assert c.replica_changes("db") == [(0.0, 1.0), (10.0, 2.0), (20.0, 1.0)]
        assert c.replica_changes("ghost") == []

    def test_tier_cpu_series(self):
        c = MetricsCollector()
        c.record_tier_cpu("db", 1.0, 0.5, 0.6)
        assert list(c.tier_cpu["db"].values) == [0.5]
        assert list(c.tier_cpu_raw["db"].values) == [0.6]

    def test_reconfiguration_log(self):
        c = MetricsCollector()
        c.record_reconfiguration(5.0, "grow")
        assert c.reconfigurations == [(5.0, "grow")]
