"""Tests for the decision-trace observability layer (repro.obs)."""

import json

import pytest

from repro.jade.control_loop import InhibitionLock
from repro.jade.reactors import ThresholdReactor
from repro.jade.sensors import CpuReading
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.obs.events import (
    EVENT_KINDS,
    Decision,
    DecisionAction,
    DecisionReason,
    NodeAllocated,
    ProbeReading,
    ReconfigCompleted,
    ReconfigStarted,
)
from repro.obs.tracer import Tracer, causal_chain, load_jsonl
from repro.obs.timeline import render_timeline, render_timeline_file
from repro.workload.profiles import ConstantProfile, PiecewiseProfile


def probe_ev(t=0.0, **kw):
    kw.setdefault("probe", "p")
    kw.setdefault("smoothed", 0.5)
    kw.setdefault("raw", 0.5)
    kw.setdefault("nodes", 1)
    return ProbeReading(t, **kw)


def decision_ev(t=0.0, **kw):
    kw.setdefault("source", "resize-db")
    kw.setdefault("action", DecisionAction.GROW)
    kw.setdefault("executed", True)
    kw.setdefault("reason", DecisionReason.ABOVE_MAX)
    kw.setdefault("smoothed", 0.9)
    kw.setdefault("replicas", 1)
    return Decision(t, **kw)


class TestTracer:
    def test_seq_and_run_id_stamped(self):
        tracer = Tracer(run_id="r1")
        s0 = tracer.emit(probe_ev(1.0))
        s1 = tracer.emit(probe_ev(2.0))
        assert (s0, s1) == (0, 1)
        records = tracer.records()
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["run"] == "r1" for r in records)
        assert records[0]["kind"] == "probe-reading"
        assert tracer.events_emitted == 2

    def test_cause_omitted_when_absent(self):
        tracer = Tracer()
        tracer.emit(probe_ev())
        assert "cause" not in tracer.records()[0]

    def test_cause_stack_scopes_children(self):
        tracer = Tracer()
        root = tracer.emit(decision_ev())
        tracer.push_cause(root)
        try:
            assert tracer.current_cause == root
            tracer.emit(NodeAllocated(0.0, node="n1", owner="tier:db"))
        finally:
            tracer.pop_cause()
        tracer.emit(probe_ev())
        records = tracer.records()
        assert records[1]["cause"] == root
        assert "cause" not in records[2]
        assert tracer.current_cause is None

    def test_explicit_cause_wins_over_stack(self):
        tracer = Tracer()
        tracer.push_cause(7)
        tracer.emit(ReconfigCompleted(
            1.0, tier="db", operation="grow", duration_s=1.0,
            replica_delta=1, replicas=2, cause=3,
        ))
        tracer.pop_cause()
        assert tracer.records()[0]["cause"] == 3

    def test_ring_evicts_but_aggregates_keep_counting(self):
        tracer = Tracer(ring_size=2)
        for _ in range(5):
            tracer.emit(probe_ev())
        assert len(tracer.records()) == 2
        assert tracer.records()[0]["seq"] == 3  # oldest survivor
        assert tracer.summary()["events"] == 5
        assert tracer.counts["probe-reading"] == 5

    def test_sink_keeps_evicted_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(run_id="rs", ring_size=1, sink_path=str(path)) as tracer:
            for i in range(4):
                tracer.emit(probe_ev(float(i)))
        records = load_jsonl(str(path))
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        # Every line is standalone JSON with the run id.
        with open(path) as fh:
            for line in fh:
                assert json.loads(line)["run"] == "rs"

    def test_summary_decision_and_reconfig_stats(self):
        tracer = Tracer()
        tracer.emit(decision_ev())
        tracer.emit(decision_ev(
            executed=False, action=DecisionAction.SHRINK,
            reason=DecisionReason.AT_FLOOR,
        ))
        tracer.emit(ReconfigCompleted(
            10.0, tier="db", operation="grow", duration_s=20.0,
            replica_delta=1, replicas=2,
        ))
        tracer.emit(ReconfigCompleted(
            20.0, tier="db", operation="grow", duration_s=10.0,
            replica_delta=1, replicas=3,
        ))
        tracer.emit(ReconfigCompleted(
            30.0, tier="db", operation="grow", duration_s=0.0,
            replica_delta=0, replicas=3, ok=False, error="boom",
        ))
        summary = tracer.summary()
        assert summary["decisions"] == {"grow/above-max": 1, "shrink/at-floor": 1}
        assert summary["decisions_suppressed"] == 1
        recon = summary["reconfigurations"]
        assert recon["count"] == 3
        assert recon["failures"] == 1
        assert recon["mean_duration_s"] == pytest.approx(15.0)
        assert recon["max_duration_s"] == pytest.approx(20.0)

    def test_bad_ring_size_rejected(self):
        with pytest.raises(ValueError):
            Tracer(ring_size=0)

    def test_close_stops_sink_not_ring(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sink_path=str(path))
        tracer.emit(probe_ev())
        tracer.close()
        tracer.emit(probe_ev())  # must not raise
        assert len(load_jsonl(str(path))) == 1
        assert len(tracer.records()) == 2

    def test_all_event_kinds_serialize(self):
        """Every registered event kind round-trips through to_record/json."""
        import dataclasses

        for kind, cls in EVENT_KINDS.items():
            fields = [
                f for f in dataclasses.fields(cls)
                if f.name not in ("t", "cause")
            ]
            kwargs = {}
            for f in fields:
                origin = f.type
                if "int" in str(origin):
                    kwargs[f.name] = 1
                elif "float" in str(origin):
                    kwargs[f.name] = 1.0
                elif "bool" in str(origin):
                    kwargs[f.name] = True
                else:
                    kwargs[f.name] = "x"
            record = cls(0.0, **kwargs).to_record()
            assert record["kind"] == kind
            json.dumps(record)


class TestCausalChain:
    def records(self):
        return [
            {"seq": 0, "kind": "decision"},
            {"seq": 1, "kind": "reconfig-started", "cause": 0},
            {"seq": 2, "kind": "reconfig-completed", "cause": 1},
            {"seq": 3, "kind": "probe-reading"},
        ]

    def test_walks_root_first(self):
        records = self.records()
        chain = causal_chain(records, records[2])
        assert [r["seq"] for r in chain] == [0, 1, 2]

    def test_rootless_record_is_its_own_chain(self):
        records = self.records()
        assert causal_chain(records, records[3]) == [records[3]]

    def test_missing_parent_truncates(self):
        records = self.records()[1:]  # seq 0 evicted
        chain = causal_chain(records, records[1])
        assert [r["seq"] for r in chain] == [1, 2]

    def test_cycle_terminates(self):
        records = [
            {"seq": 0, "kind": "a", "cause": 1},
            {"seq": 1, "kind": "b", "cause": 0},
        ]
        chain = causal_chain(records, records[0])
        assert [r["seq"] for r in chain] == [1, 0]


class TestTimeline:
    def trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(run_id="tl", sink_path=str(path)) as tracer:
            tracer.emit(probe_ev(1.0))
            root = tracer.emit(decision_ev(2.0))
            tracer.push_cause(root)
            start = tracer.emit(ReconfigStarted(
                2.0, tier="db", operation="grow", replicas=1,
            ))
            tracer.pop_cause()
            tracer.emit(ReconfigCompleted(
                5.0, tier="db", operation="grow", duration_s=3.0,
                replica_delta=1, replicas=2, cause=start,
            ))
        return str(path)

    def test_probe_readings_hidden_by_default(self, tmp_path):
        out = render_timeline_file(self.trace(tmp_path))
        assert "probe-reading" not in out
        assert "run=tl, 4 events" in out

    def test_include_probes(self, tmp_path):
        out = render_timeline_file(self.trace(tmp_path), include_probes=True)
        assert "probe-reading" in out

    def test_children_indent_under_cause(self, tmp_path):
        lines = render_timeline_file(self.trace(tmp_path)).splitlines()[1:]
        assert lines[0].split("s ", 1)[1].startswith("decision")
        assert lines[1].split("s ", 1)[1].startswith("  reconfig-started")
        assert lines[2].split("s ", 1)[1].startswith("    reconfig-completed")

    def test_tail_limits_output(self, tmp_path):
        out = render_timeline_file(self.trace(tmp_path), tail=1)
        body = out.splitlines()[1:]
        assert len(body) == 1
        assert "reconfig-completed" in body[0]

    def test_empty_trace(self):
        assert render_timeline([]) == "(empty trace)"


class FakeTier:
    def __init__(self, replicas=1):
        self.replica_count = replicas
        self.accept = True

    def grow(self):
        if self.accept:
            self.replica_count += 1
        return self.accept

    def shrink(self):
        if self.accept:
            self.replica_count -= 1
        return self.accept


def reading(t, smoothed):
    return CpuReading(t, smoothed, smoothed, 1)


class TestReactorTracing:
    def make(self, kernel, tier=None, **kwargs):
        tier = tier if tier is not None else FakeTier()
        lock = InhibitionLock(kernel, 60.0)
        tracer = Tracer(run_id="rt")
        reactor = ThresholdReactor(
            kernel, tier, lock, warmup_samples=0, name="resize-db", **kwargs
        )
        reactor.tracer = tracer
        lock.tracer = tracer
        return reactor, tier, lock, tracer

    def decisions(self, tracer):
        return [r for r in tracer.records() if r["kind"] == "decision"]

    def test_executed_grow_decision(self, kernel):
        reactor, _, _, tracer = self.make(kernel)
        reactor.on_reading(reading(0.0, 0.9))
        records = tracer.records()
        decision = self.decisions(tracer)[0]
        assert decision["executed"] and decision["reason"] == "above-max"
        assert decision["action"] == "grow"
        # The lock is acquired before the decision is recorded as executed.
        acq = next(r for r in records if r["kind"] == "inhibition-acquired")
        assert acq["seq"] < decision["seq"]

    def test_at_cap_reason(self, kernel):
        reactor, _, _, tracer = self.make(
            kernel, FakeTier(replicas=3), max_replicas=3
        )
        reactor.on_reading(reading(0.0, 0.95))
        (decision,) = self.decisions(tracer)
        assert not decision["executed"]
        assert decision["action"] == "grow"
        assert decision["reason"] == "at-cap"

    def test_at_floor_reason(self, kernel):
        reactor, _, _, tracer = self.make(kernel, FakeTier(replicas=1))
        reactor.on_reading(reading(0.0, 0.05))
        (decision,) = self.decisions(tracer)
        assert not decision["executed"]
        assert decision["action"] == "shrink"
        assert decision["reason"] == "at-floor"
        assert reactor.decisions_suppressed == 1

    def test_inhibited_reason_and_rejection_event(self, kernel):
        reactor, _, _, tracer = self.make(kernel)
        reactor.on_reading(reading(0.0, 0.9))   # acquires the lock
        reactor.on_reading(reading(1.0, 0.9))   # inhibited
        decision = self.decisions(tracer)[-1]
        assert decision["reason"] == "inhibited"
        assert any(
            r["kind"] == "inhibition-rejected" for r in tracer.records()
        )

    def test_actuator_busy_retracts_executed_decision(self, kernel):
        tier = FakeTier()
        tier.accept = False
        reactor, _, _, tracer = self.make(kernel, tier)
        reactor.on_reading(reading(0.0, 0.9))
        executed, retraction = self.decisions(tracer)
        assert executed["executed"]
        assert not retraction["executed"]
        assert retraction["reason"] == "actuator-busy"
        assert retraction["cause"] == executed["seq"]

    def test_nan_reading_emits_no_data(self, kernel):
        reactor, tier, _, tracer = self.make(kernel)
        reactor.on_reading(reading(0.0, float("nan")))
        (decision,) = self.decisions(tracer)
        assert decision["action"] == "none"
        assert decision["reason"] == "no-data"
        assert reactor.no_data_decisions == 1
        assert tier.replica_count == 1


class TestTracedSystemRun:
    """The acceptance bar: a traced Fig. 5-style run yields a JSONL file in
    which every replica-count change traces back to an executed Decision."""

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        profile = PiecewiseProfile([(0.0, 300), (600.0, 40)], duration_s=1400.0)
        cfg = ExperimentConfig(
            profile=profile,
            seed=7,
            tail_s=30.0,
            trace_jsonl=str(path),
            trace_run_id="itest",
        )
        system = ManagedSystem(cfg)
        system.run()
        return system, load_jsonl(str(path))

    def test_run_id_on_every_record(self, traced):
        _, records = traced
        assert records
        assert all(r["run"] == "itest" for r in records)

    def test_grow_and_shrink_both_occurred(self, traced):
        system, records = traced
        deltas = [
            r["replica_delta"]
            for r in records
            if r["kind"] == "reconfig-completed" and r.get("ok", True)
        ]
        assert any(d > 0 for d in deltas)
        assert any(d < 0 for d in deltas)

    def test_every_replica_change_caused_by_executed_decision(self, traced):
        _, records = traced
        changes = [
            r
            for r in records
            if r["kind"] == "reconfig-completed"
            and r.get("ok", True)
            and r["replica_delta"] != 0
        ]
        assert changes
        for change in changes:
            chain = causal_chain(records, change)
            root = chain[0]
            assert root["kind"] == "decision", chain
            assert root["executed"]
            assert root["reason"] in ("above-max", "below-min")
            assert root["seq"] < change["seq"]
            assert root["t"] <= change["t"]
            assert root["run"] == change["run"]

    def test_decision_precedes_started_precedes_completed(self, traced):
        _, records = traced
        for change in records:
            if change["kind"] != "reconfig-completed" or not change.get("ok", True):
                continue
            kinds = [r["kind"] for r in causal_chain(records, change)]
            assert kinds == ["decision", "reconfig-started", "reconfig-completed"]

    def test_kernel_stats_emitted_last(self, traced):
        system, records = traced
        assert records[-1]["kind"] == "kernel-stats"
        assert records[-1]["events_processed"] == system.kernel.events_processed

    def test_summary_surfaces_in_json_report(self, traced):
        from repro.metrics.export import to_json_dict

        system, _ = traced
        report = to_json_dict(system.collector, tracer=system.tracer)
        assert report["trace"]["run"] == "itest"
        assert report["trace"]["reconfigurations"]["count"] >= 2

    def test_untraced_run_wires_nothing(self):
        system = ManagedSystem(
            ExperimentConfig(profile=ConstantProfile(10, 30.0))
        )
        assert system.tracer is None
        assert system.app_tier.tracer is None
        assert system.db_tier.tracer is None
        optimizer = system.optimizer
        assert optimizer.inhibition.tracer is None
        for loop in optimizer.loops.values():
            assert loop.probe.tracer is None
            assert loop.reactor.tracer is None
