"""Tests for the model-based capacity planner."""

import pytest

from repro.jade.control_loop import InhibitionLock
from repro.jade.planner import PlannerReactor
from repro.jade.self_optimization import LoopConfig
from repro.jade.sensors import CpuReading
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import PiecewiseProfile


class FakeTier:
    def __init__(self, replicas=1):
        self.replica_count = replicas
        self.calls = []

    def grow(self):
        self.calls.append("grow")
        self.replica_count += 1
        return True

    def shrink(self):
        self.calls.append("shrink")
        self.replica_count -= 1
        return True


def make(kernel, tier=None, **kw):
    tier = tier or FakeTier()
    kw.setdefault("warmup_samples", 0)
    kw.setdefault("target_utilization", 0.60)
    reactor = PlannerReactor(kernel, tier, InhibitionLock(kernel, 60.0), **kw)
    return reactor, tier


def reading(kernel, value):
    return CpuReading(kernel.now, value, value, 1)


class TestPlanMath:
    def test_desired_replicas_from_demand(self, kernel):
        reactor, _ = make(kernel)
        # U=0.9 on 2 replicas -> demand 1.8 -> at target 0.6 need 3.
        assert reactor.desired_replicas(0.9, 2) == 3
        # U=0.2 on 3 replicas -> demand 0.6 -> 1 replica suffices.
        assert reactor.desired_replicas(0.2, 3) == 1

    def test_floor_and_ceiling(self, kernel):
        reactor, _ = make(kernel, min_replicas=2, max_replicas=4)
        assert reactor.desired_replicas(0.01, 2) == 2
        assert reactor.desired_replicas(1.0, 4) == 4

    def test_validation(self, kernel):
        with pytest.raises(ValueError):
            make(kernel, target_utilization=1.5)
        with pytest.raises(ValueError):
            make(kernel, hysteresis=-0.1)
        with pytest.raises(ValueError):
            make(kernel, min_replicas=0)


class TestPlannerDecisions:
    def test_grows_when_above_band(self, kernel):
        reactor, tier = make(kernel)
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow"]
        assert reactor.plans == [(0.0, 1, 2)]

    def test_shrinks_when_below_band(self, kernel):
        reactor, tier = make(kernel, tier=FakeTier(replicas=3))
        reactor.on_reading(reading(kernel, 0.2))
        assert tier.calls == ["shrink"]

    def test_quiet_inside_hysteresis_band(self, kernel):
        reactor, tier = make(kernel, hysteresis=0.15)
        reactor.on_reading(reading(kernel, 0.70))  # within 0.60 +- 0.15
        assert tier.calls == []

    def test_no_action_when_plan_matches_current(self, kernel):
        reactor, tier = make(kernel, tier=FakeTier(replicas=1), hysteresis=0.0)
        # U=0.55 on 1 replica: demand 0.55 -> ceil(0.55/0.6)=1 == current.
        reactor.on_reading(reading(kernel, 0.55))
        assert tier.calls == []

    def test_inhibition_respected(self, kernel):
        reactor, tier = make(kernel)
        reactor.on_reading(reading(kernel, 0.9))
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow"]
        assert reactor.decisions_suppressed == 1


class TestPlannerEndToEnd:
    def test_planner_handles_big_step(self):
        """A large load step: the planner provisions the DB tier out and
        back with its own target, no hand-set min/max band."""
        profile = PiecewiseProfile(
            [(0.0, 80), (120.0, 400), (900.0, 80)], duration_s=1400.0
        )
        cfg = ExperimentConfig(
            profile=profile,
            seed=14,
            db_loop=LoopConfig(window_s=90.0, planner=True, planner_target=0.55),
            app_loop=LoopConfig(window_s=60.0, planner=True, planner_target=0.55),
        )
        system = ManagedSystem(cfg)
        col = system.run()
        assert system.db_tier.grows_completed >= 2
        assert system.db_tier.shrinks_completed >= 1
        # Latency was kept interactive through the step.
        tail = col.latencies.window(600.0, 900.0)
        assert tail.mean() < 0.5
        # Utilization settled near the target after scaling.
        settled = col.tier_cpu["database"].window(700.0, 900.0)
        assert settled.mean() < 0.75
