"""Unit + property tests for the load-balancing policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.legacy.policies import (
    LeastPendingPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedRoundRobinPolicy,
    make_policy,
)


class TestRoundRobin:
    def test_cycles_in_order(self):
        p = RoundRobinPolicy()
        items = ["a", "b", "c"]
        assert [p.choose(items) for _ in range(6)] == ["a", "b", "c", "a", "b", "c"]

    def test_handles_shrinking_list(self):
        p = RoundRobinPolicy()
        p.choose(["a", "b", "c"])
        p.choose(["a", "b", "c"])
        assert p.choose(["a"]) == "a"

    def test_reset(self):
        p = RoundRobinPolicy()
        p.choose(["a", "b"])
        p.reset()
        assert p.choose(["a", "b"]) == "a"

    def test_empty_rejected(self):
        with pytest.raises(IndexError):
            RoundRobinPolicy().choose([])


class TestRandom:
    def test_covers_all_backends(self):
        p = RandomPolicy(np.random.default_rng(0))
        seen = {p.choose(["a", "b", "c"]) for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_roughly_uniform(self):
        p = RandomPolicy(np.random.default_rng(0))
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[p.choose(["a", "b"])] += 1
        assert abs(counts["a"] - counts["b"]) < 200

    def test_empty_rejected(self):
        with pytest.raises(IndexError):
            RandomPolicy().choose([])


class TestLeastPending:
    def test_picks_lowest(self):
        loads = {"a": 5, "b": 1, "c": 3}
        p = LeastPendingPolicy(lambda x: loads[x])
        assert p.choose(["a", "b", "c"]) == "b"

    def test_tie_breaks_on_order(self):
        loads = {"a": 2, "b": 2}
        p = LeastPendingPolicy(lambda x: loads[x])
        assert p.choose(["a", "b"]) == "a"

    def test_adapts_to_changing_load(self):
        loads = {"a": 0, "b": 0}
        p = LeastPendingPolicy(lambda x: loads[x])
        first = p.choose(["a", "b"])
        loads[first] += 10
        assert p.choose(["a", "b"]) != first


class TestWeightedRoundRobin:
    def test_respects_weights(self):
        weights = {"heavy": 3.0, "light": 1.0}
        p = WeightedRoundRobinPolicy(lambda x: weights[x])
        picks = [p.choose(["heavy", "light"]) for _ in range(40)]
        assert picks.count("heavy") == 30
        assert picks.count("light") == 10

    def test_equal_weights_behave_like_rr(self):
        p = WeightedRoundRobinPolicy(lambda x: 1.0)
        picks = [p.choose(["a", "b"]) for _ in range(6)]
        assert picks.count("a") == 3 and picks.count("b") == 3

    def test_smoothness(self):
        """Smooth WRR never picks the same backend more than
        ceil(w_max/w_min) times in a row for a 2-backend set."""
        weights = {"x": 2.0, "y": 1.0}
        p = WeightedRoundRobinPolicy(lambda c: weights[c])
        picks = [p.choose(["x", "y"]) for _ in range(30)]
        longest = cur = 1
        for a, b in zip(picks, picks[1:]):
            cur = cur + 1 if a == b else 1
            longest = max(longest, cur)
        assert longest <= 2

    def test_zero_weight_rejected(self):
        p = WeightedRoundRobinPolicy(lambda x: 0.0)
        with pytest.raises(ValueError):
            p.choose(["a"])


class TestMakePolicy:
    def test_names(self):
        assert isinstance(make_policy("Random"), RandomPolicy)
        assert isinstance(make_policy("roundrobin"), RoundRobinPolicy)
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(
            make_policy("LeastPendingRequestsFirst", pending_fn=lambda x: 0),
            LeastPendingPolicy,
        )
        assert isinstance(
            make_policy("wrr", weight_fn=lambda x: 1.0), WeightedRoundRobinPolicy
        )

    def test_least_pending_requires_fn(self):
        with pytest.raises(ValueError):
            make_policy("leastpending")

    def test_wrr_requires_fn(self):
        with pytest.raises(ValueError):
            make_policy("wrr")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("quantum")


@given(
    n=st.integers(min_value=1, max_value=8),
    rounds=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_round_robin_is_fair_over_full_cycles(n, rounds):
    """Over k full cycles every backend is chosen exactly k times."""
    p = RoundRobinPolicy()
    items = list(range(n))
    picks = [p.choose(items) for _ in range(n * rounds)]
    for item in items:
        assert picks.count(item) == rounds


@given(
    weights=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=5)
)
@settings(max_examples=40, deadline=None)
def test_wrr_exact_proportions_over_weight_sum(weights):
    """Over sum(weights) picks, backend i is chosen exactly weights[i]
    times (the defining property of smooth weighted round-robin)."""
    table = {f"b{i}": float(w) for i, w in enumerate(weights)}
    p = WeightedRoundRobinPolicy(lambda c: table[c])
    items = list(table)
    total = int(sum(weights))
    picks = [p.choose(items) for _ in range(total)]
    for name, w in table.items():
        assert picks.count(name) == int(w)
