"""The policy plugin subsystem and the controller autotuner
(``repro.policy``).

The load-bearing guarantees:

* the refactored default path is **byte-identical** to the pre-refactor
  reactors — an explicit ``PolicyConfig("threshold")`` run reproduces the
  legacy-flag run exactly (latency stream, summary, reconfiguration
  counts), ditto ``adaptive-threshold`` vs. the ``adaptive`` flag;
* every plugin's decision table does what its docstring says;
* the ``AdaptiveThresholdPolicy`` can no longer widen ``min_threshold``
  below zero, however large ``widen_step`` is (the clamp regression);
* plugin runs are engine citizens: serial == pool == cache;
* every non-hold verdict is traced as a ``policy-decided`` sibling and
  ``repro trace`` renders it;
* the sweep's controller axis and the autotuner rank/config machinery.
"""

from __future__ import annotations

import json
import math
import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.obs.tracer import load_jsonl
from repro.policy import (
    HOLD,
    POLICIES,
    AdaptiveThresholdPolicy,
    ForecastFeedforwardPolicy,
    LatencyBandPolicy,
    PolicyConfig,
    PolicyDecision,
    PolicyInputs,
    QueueModelPolicy,
    ThresholdPolicy,
    make_policy,
)
from repro.policy.tune import (
    PAPER_DEFAULT,
    TuneObjective,
    TunePoint,
    TuneSpec,
    load_tuned_point,
    run_tune,
    score_run,
    write_tuned_config,
)
from repro.runner import ExperimentRunner, ResultCache, SweepPoint
from repro.workload.profiles import RampProfile

SCALE = 0.05


def ramp_config(seed: int = 1, scale: float = SCALE, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(
        profile=RampProfile(
            warmup_s=300.0 * scale,
            step_period_s=60.0 * scale,
            cooldown_s=300.0 * scale,
        ),
        seed=seed,
        managed=True,
        **kwargs,
    )


def inputs(
    smoothed: float = 0.5,
    replicas: int = 2,
    t: float = 100.0,
    raw: float | None = None,
    max_replicas: int | None = None,
) -> PolicyInputs:
    return PolicyInputs(
        t=t,
        smoothed=smoothed,
        raw=smoothed if raw is None else raw,
        node_count=replicas,
        replicas=replicas,
        min_replicas=1,
        max_replicas=max_replicas,
        tier="app",
    )


# ----------------------------------------------------------------------
# Registry + PolicyConfig
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_plugins_registered(self):
        assert set(POLICIES) >= {
            "threshold",
            "adaptive-threshold",
            "latency-band",
            "queue-model",
            "forecast",
        }

    def test_make_policy_applies_params(self):
        p = make_policy("threshold", max_threshold=0.9, min_threshold=0.2)
        assert p.max_threshold == 0.9 and p.min_threshold == 0.2

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("bogus")

    def test_policies_and_configs_pickle(self):
        for name in POLICIES:
            p = make_policy(name)
            clone = pickle.loads(pickle.dumps(p))
            assert clone == p
        pc = PolicyConfig.parse("queue-model:rho_cap=0.85")
        assert pickle.loads(pickle.dumps(pc)) == pc


class TestPolicyConfig:
    def test_parse_name_only(self):
        pc = PolicyConfig.parse("queue-model")
        assert pc.name == "queue-model" and pc.params == ()
        assert pc.label == "queue-model"

    def test_parse_coerces_param_types(self):
        pc = PolicyConfig.parse("forecast:lead_s=90:forecaster=seasonal")
        params = pc.as_dict()
        assert params["lead_s"] == 90 and isinstance(params["lead_s"], int)
        assert params["forecaster"] == "seasonal"

    def test_label_roundtrips_through_parse(self):
        pc = PolicyConfig.parse("threshold:max_threshold=0.7")
        assert PolicyConfig.parse(pc.label) == pc

    def test_params_are_order_insensitive(self):
        a = PolicyConfig.parse("forecast:lead_s=90:forecaster=trend")
        b = PolicyConfig.parse("forecast:forecaster=trend:lead_s=90")
        assert a == b and a.label == b.label

    def test_malformed_part_raises(self):
        with pytest.raises(ValueError):
            PolicyConfig.parse("threshold:max_threshold")
        with pytest.raises(ValueError):
            PolicyConfig.parse("")

    def test_build_defaults_lose_to_overrides(self):
        pc = PolicyConfig.parse("threshold:max_threshold=0.7")
        p = pc.build(max_threshold=0.9, min_threshold=0.2)
        assert p.max_threshold == 0.7  # explicit override wins
        assert p.min_threshold == 0.2  # default fills the gap


class TestPolicyInputs:
    def test_digest_is_stable_and_short(self):
        a, b = inputs(0.5), inputs(0.5)
        assert a.digest() == b.digest()
        assert len(a.digest()) == 12
        assert all(c in "0123456789abcdef" for c in a.digest())

    def test_digest_distinguishes_fields(self):
        assert inputs(0.5).digest() != inputs(0.51).digest()
        assert inputs(0.5, replicas=2).digest() != inputs(0.5, replicas=3).digest()


# ----------------------------------------------------------------------
# Decision tables
# ----------------------------------------------------------------------
class TestThresholdPolicy:
    def test_decision_table(self):
        p = ThresholdPolicy(max_threshold=0.8, min_threshold=0.35)
        assert p.decide(inputs(0.81), None).action == "grow"
        assert p.decide(inputs(0.81), None).reason == "above-max"
        assert p.decide(inputs(0.34), None).action == "shrink"
        assert p.decide(inputs(0.34), None).reason == "below-min"
        # strict comparisons, exactly like the pre-refactor reactor
        assert p.decide(inputs(0.8), None).is_hold
        assert p.decide(inputs(0.35), None).is_hold

    def test_band_validation(self):
        with pytest.raises(ValueError, match="need 0 <= min < max <= 1"):
            ThresholdPolicy(max_threshold=0.3, min_threshold=0.5)


class TestAdaptiveThresholdPolicy:
    def test_oscillation_widens_band(self):
        p = AdaptiveThresholdPolicy(oscillation_window_s=100.0, widen_step=0.05)
        state = p.initial_state()
        p.on_actuated("grow", 10.0, state)
        p.on_actuated("shrink", 50.0, state)
        assert state.min_threshold == pytest.approx(0.30)
        assert state.adaptations == 1

    def test_large_widen_step_cannot_push_threshold_below_zero(self):
        # Regression: widen_step > min_threshold used to drive the live
        # threshold negative (every reading then reads as "above" it).
        p = AdaptiveThresholdPolicy(
            oscillation_window_s=100.0, widen_step=0.9, min_floor=0.10
        )
        state = p.initial_state()
        for t in (10.0, 20.0, 30.0, 40.0):
            p.on_actuated("grow", t, state)
            p.on_actuated("shrink", t + 5.0, state)
        assert state.min_threshold >= 0.0
        assert state.min_threshold == pytest.approx(0.10)

    def test_min_floor_clamped_into_valid_range(self):
        assert AdaptiveThresholdPolicy(min_floor=-0.5).min_floor == 0.0
        # a floor above the starting threshold would invert the band
        assert AdaptiveThresholdPolicy(
            min_threshold=0.35, min_floor=0.8
        ).min_floor == pytest.approx(0.35)

    def test_reactor_level_regression(self, kernel):
        # The satellite fix observed from the reactor API, where the
        # original bug surfaced.
        from repro.jade.control_loop import InhibitionLock
        from repro.jade.reactors import AdaptiveThresholdReactor

        class FakeTier:
            name = "tier"
            replica_count = 2

            def grow(self):
                return True

            def shrink(self):
                return True

        reactor = AdaptiveThresholdReactor(
            kernel,
            FakeTier(),
            InhibitionLock(kernel, 0.0),
            warmup_samples=0,
            oscillation_window_s=1e9,
            widen_step=5.0,
        )
        for _ in range(6):
            reactor.policy.on_actuated("grow", kernel.now, reactor.policy_state)
            reactor.policy.on_actuated("shrink", kernel.now, reactor.policy_state)
        assert reactor.min_threshold >= 0.0


class TestQueueModelPolicy:
    def test_rho_target_from_demand_and_slo(self):
        p = QueueModelPolicy(slo_latency_s=0.25, service_demand_s=0.05)
        assert p.rho_target == pytest.approx(1 - 0.05 / 0.25)

    def test_rho_target_clamped(self):
        # demand >= SLO → the formula goes nonpositive; the floor holds
        assert QueueModelPolicy(
            slo_latency_s=0.1, service_demand_s=0.2
        ).rho_target == pytest.approx(0.05)
        assert QueueModelPolicy(
            slo_latency_s=10.0, service_demand_s=0.001, rho_cap=0.9
        ).rho_target == pytest.approx(0.9)

    def test_grow_sizes_tier_directly(self):
        p = QueueModelPolicy(slo_latency_s=0.25, service_demand_s=0.05)
        # rho* = 0.8; U=1.0 on 2 replicas → k* = ceil(2.5) = 3
        d = p.decide(inputs(1.0, replicas=2), None)
        assert d.action == "grow" and d.target == 3

    def test_grow_target_respects_cap(self):
        p = QueueModelPolicy(slo_latency_s=0.25, service_demand_s=0.05)
        d = p.decide(inputs(1.0, replicas=2, max_replicas=2), None)
        assert d.is_hold  # clamped target == current size

    def test_shrink_needs_margin(self):
        p = QueueModelPolicy(
            slo_latency_s=0.25, service_demand_s=0.05, shrink_margin=0.10
        )
        # rho* = 0.8, so shrink only below 0.72; U=0.25 on 2 → k*=1
        assert p.decide(inputs(0.25, replicas=2), None).action == "shrink"
        # U=0.38 on 2 → k* = ceil(0.95) = 1 but 0.38*2/1=0.76 > 0.72 … the
        # hysteresis is on the *measured* utilization, not the target
        hold = p.decide(inputs(0.75, replicas=2), None)
        assert hold.is_hold

    def test_hold_inside_band(self):
        p = QueueModelPolicy(slo_latency_s=0.25, service_demand_s=0.05)
        assert p.decide(inputs(0.75, replicas=2), None).is_hold


class TestForecastFeedforwardPolicy:
    def rising(self, p, state, n=10, start=0.3, step=0.05):
        for i in range(n):
            d = p.decide(
                inputs(start + i * step, t=15.0 * i, replicas=2), state
            )
        return d

    def test_reactive_grow_still_fires(self):
        p = ForecastFeedforwardPolicy()
        state = p.initial_state()
        d = p.decide(inputs(0.9), state)
        assert d.action == "grow" and d.reason == "above-max"

    def test_predicted_crossing_grows_early(self):
        p = ForecastFeedforwardPolicy(forecaster="trend", lead_s=300.0)
        state = p.initial_state()
        d = self.rising(p, state)
        # smoothed is still below max (0.75 max seen) but the trend
        # crosses within the lead horizon
        assert d.action == "grow" and d.reason == "predicted-above-max"

    def test_shrink_needs_prediction_agreement(self):
        p = ForecastFeedforwardPolicy(forecaster="trend", lead_s=120.0)
        state = p.initial_state()
        # rising from below the min band: measured says shrink, the
        # forecast says the load is coming back — hold
        for i, u in enumerate((0.10, 0.15, 0.20, 0.25, 0.30)):
            d = p.decide(inputs(u, t=15.0 * i), state)
        assert d.is_hold
        # flat and low: both agree — shrink
        p2 = ForecastFeedforwardPolicy(forecaster="trend", lead_s=120.0)
        s2 = p2.initial_state()
        for i in range(6):
            d = p2.decide(inputs(0.1, t=15.0 * i), s2)
        assert d.action == "shrink"

    def test_actuation_resets_forecaster(self):
        p = ForecastFeedforwardPolicy(forecaster="trend", lead_s=300.0)
        state = p.initial_state()
        self.rising(p, state)
        before = state.forecaster
        p.on_actuated("grow", 200.0, state)
        assert state.forecaster is not before


class TestLatencyBandPolicy:
    def test_decision_table(self):
        p = LatencyBandPolicy(max_latency_s=0.5, min_latency_s=0.06)
        assert p.decide(inputs(0.6), None).action == "grow"
        assert p.decide(inputs(0.05), None).action == "shrink"
        assert p.decide(inputs(0.3), None).is_hold

    def test_band_validation(self):
        with pytest.raises(ValueError, match="latency"):
            LatencyBandPolicy(max_latency_s=0.05, min_latency_s=0.06)

    def test_hold_constant(self):
        assert HOLD.is_hold
        assert PolicyDecision("grow", "above-max").is_hold is False


# ----------------------------------------------------------------------
# Byte-identity: the refactored default path vs. the legacy flags
# ----------------------------------------------------------------------
class TestByteIdentity:
    def pair(self, legacy_cfg, policy_cfg):
        runner = ExperimentRunner(cache=None, parallel=False)
        runs = runner.run_many({"legacy": legacy_cfg, "policy": policy_cfg})
        return runs["legacy"], runs["policy"]

    def assert_identical(self, a, b):
        assert a.summary() == b.summary()
        assert np.array_equal(
            a.collector.latencies.values, b.collector.latencies.values
        )
        for tier in ("app_tier", "db_tier"):
            ta, tb = getattr(a, tier), getattr(b, tier)
            assert ta.grows_completed == tb.grows_completed
            assert ta.shrinks_completed == tb.shrinks_completed
        assert a.events_processed == b.events_processed

    def test_explicit_threshold_policy_matches_legacy_reactor(self):
        legacy = ramp_config(seed=1)
        pc = PolicyConfig.parse("threshold")
        policy = ramp_config(seed=1)
        policy.app_loop = replace(policy.app_loop, policy=pc)
        policy.db_loop = replace(policy.db_loop, policy=pc)
        self.assert_identical(*self.pair(legacy, policy))

    def test_explicit_adaptive_policy_matches_adaptive_flag(self):
        legacy = ramp_config(seed=2)
        legacy.app_loop = replace(legacy.app_loop, adaptive=True)
        legacy.db_loop = replace(legacy.db_loop, adaptive=True)
        pc = PolicyConfig.parse("adaptive-threshold")
        policy = ramp_config(seed=2)
        policy.app_loop = replace(policy.app_loop, policy=pc)
        policy.db_loop = replace(policy.db_loop, policy=pc)
        self.assert_identical(*self.pair(legacy, policy))


# ----------------------------------------------------------------------
# Engine citizenship: serial == pool == cache for plugin runs
# ----------------------------------------------------------------------
class TestPluginRunsAreEngineCitizens:
    def queue_model_config(self, seed: int = 1) -> ExperimentConfig:
        cfg = ramp_config(seed=seed)
        pc = PolicyConfig.parse("queue-model")
        cfg.app_loop = replace(cfg.app_loop, policy=pc)
        cfg.db_loop = replace(cfg.db_loop, policy=pc)
        return cfg

    def test_serial_pool_cache_identical(self, tmp_path):
        configs = {"qm": self.queue_model_config()}
        ser = ExperimentRunner(cache=None, parallel=False).run_many(configs)
        par = ExperimentRunner(cache=None, parallel=True).run_many(configs)
        cached_runner = ExperimentRunner(cache=ResultCache(root=tmp_path))
        cached_runner.run_many(configs)
        hot = ExperimentRunner(cache=ResultCache(root=tmp_path))
        cache = hot.run_many(configs)
        assert hot.cache.hits == 1
        for other in (par, cache):
            assert ser["qm"].summary() == other["qm"].summary()
            assert np.array_equal(
                ser["qm"].collector.latencies.values,
                other["qm"].collector.latencies.values,
            )

    def test_policy_config_distinguishes_cache_keys(self):
        from repro.runner import describe_config

        assert describe_config(self.queue_model_config()) != describe_config(
            ramp_config(seed=1)
        )
        with_param = ramp_config(seed=1)
        pc = PolicyConfig.parse("queue-model:rho_cap=0.85")
        with_param.app_loop = replace(with_param.app_loop, policy=pc)
        with_param.db_loop = replace(with_param.db_loop, policy=pc)
        assert describe_config(with_param) != describe_config(
            self.queue_model_config()
        )


# ----------------------------------------------------------------------
# PolicyDecided tracing (+ repro trace rendering)
# ----------------------------------------------------------------------
class TestPolicyDecidedTracing:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("policy-trace") / "trace.jsonl"
        cfg = ramp_config(seed=3, trace_jsonl=str(path))
        ManagedSystem(cfg).run()
        return load_jsonl(str(path))

    def test_every_executed_decision_has_policy_sibling(self, traced):
        policy_events = [r for r in traced if r["kind"] == "policy-decided"]
        assert policy_events
        for record in policy_events:
            assert record["policy"] == "threshold"
            assert record["source"] in ("resize-app", "resize-db")
            assert record["action"] in ("grow", "shrink")
            assert len(record["inputs_digest"]) == 12
            # sibling, not causal parent: the verdict carries no cause
            assert "cause" not in record
        executed = [
            r
            for r in traced
            if r["kind"] == "decision"
            and r["executed"]
            and r["reason"] in ("above-max", "below-min")
        ]
        assert len(policy_events) >= len(executed)

    def test_timeline_renders_policy_events(self, traced, tmp_path):
        from repro.obs.timeline import render_timeline_file

        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            for r in traced:
                fh.write(json.dumps(r) + "\n")
        out = render_timeline_file(str(path))
        assert "policy[threshold]" in out
        assert "inputs#" in out


# ----------------------------------------------------------------------
# Sweep controller axis
# ----------------------------------------------------------------------
class TestSweepControllerAxis:
    def test_default_label_unchanged(self):
        point = SweepPoint("managed", 1, 0.1, 1)
        assert point.label == "managed-s1-x0.1-c1"

    def test_controller_suffix_only_when_non_default(self):
        point = SweepPoint("managed", 1, 0.1, 1, controller="queue-model")
        assert point.label == "managed-s1-x0.1-c1-pqueue-model"

    def test_config_installs_policy_on_both_loops(self):
        cfg = SweepPoint(
            "managed", 1, 0.1, 1, controller="forecast:lead_s=90"
        ).config()
        assert cfg.app_loop.policy == PolicyConfig.parse("forecast:lead_s=90")
        assert cfg.db_loop.policy == cfg.app_loop.policy

    def test_static_cells_reject_controllers(self):
        with pytest.raises(ValueError, match="managed loops"):
            SweepPoint("static", 1, 0.1, 1, controller="queue-model")

    def test_federated_cells_reject_controllers(self):
        with pytest.raises(ValueError, match="default controller"):
            SweepPoint(
                "managed", 1, 0.1, 1, regions=2, controller="queue-model"
            )

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError, match="unknown controller"):
            SweepPoint("managed", 1, 0.1, 1, controller="bogus")


# ----------------------------------------------------------------------
# Autotuner
# ----------------------------------------------------------------------
class TestTunePoint:
    def test_paper_default_is_the_committed_reference(self):
        assert PAPER_DEFAULT.app_max == 0.80
        assert PAPER_DEFAULT.db_max == 0.75
        assert PAPER_DEFAULT.inhibition_s == 60.0

    def test_validation(self):
        with pytest.raises(ValueError, match="app band"):
            TunePoint(app_max=0.3, app_min=0.5)
        with pytest.raises(ValueError, match="db band"):
            TunePoint(db_max=0.3, db_min=0.5)
        with pytest.raises(ValueError):
            TunePoint(inhibition_s=-1.0)

    def test_loop_configs_carry_the_point(self):
        point = TunePoint(
            app_max=0.7, db_min=0.45, window_scale=0.5, inhibition_s=30.0
        )
        app, db = point.loop_configs()
        assert app.max_threshold == 0.7
        assert db.min_threshold == 0.45
        assert app.window_s == pytest.approx(30.0)   # 60 × 0.5
        assert db.window_s == pytest.approx(45.0)    # 90 × 0.5
        cfg = point.config(seed=1, scale=0.1)
        assert cfg.inhibition_s == 30.0

    def test_grid_filters_inverted_bands(self):
        spec = TuneSpec(app_max=(0.4, 0.8), app_min=(0.5,))
        assert all(p.app_min < p.app_max for p in spec.grid())
        assert len(spec.grid()) == 1

    def test_random_subsample_is_deterministic(self):
        spec = TuneSpec(
            app_max=(0.6, 0.7, 0.8), db_max=(0.65, 0.75), samples=3
        )
        assert len(spec.grid()) == 3
        assert [p.label for p in spec.grid()] == [
            p.label for p in spec.grid()
        ]


class TestTuner:
    @pytest.fixture(scope="class")
    def report(self):
        # db grow threshold at 0.99 = the tier never scales up: a known-
        # bad cell the tuner must rank last.
        spec = TuneSpec(db_max=(0.75, 0.99), seeds=(1,), scale=0.1)
        return run_tune(
            spec, runner=ExperimentRunner(cache=None, parallel=False)
        )

    def test_known_bad_cell_ranks_last(self, report):
        assert len(report["cells"]) == 2
        assert report["cells"][-1]["point"]["db_max"] == 0.99
        assert report["best"]["point"]["db_max"] == 0.75
        assert (
            report["cells"][0]["score"]["mean"]
            < report["cells"][-1]["score"]["mean"]
        )

    def test_score_decomposition_is_the_weighted_sum(self, report):
        obj = TuneObjective()
        for cell in report["cells"]:
            expected = (
                obj.slo_weight * cell["slo_violation_s"]["mean"]
                + obj.node_hour_weight * cell["node_hours"]["mean"]
                + obj.reconfig_weight * cell["reconfigs"]["mean"]
            )
            assert cell["score"]["mean"] == pytest.approx(expected)

    def test_tuned_config_roundtrip(self, report, tmp_path):
        path = write_tuned_config(report, tmp_path / "tuned.json")
        point = load_tuned_point(path)
        assert point.to_record() == report["best"]["point"]
        # the artifact records provenance
        record = json.loads(path.read_text())
        assert record["objective"]["slo_latency_s"] == 0.25
        assert record["spec"]["scale"] == 0.1

    def test_score_run_metrics_are_finite(self, report):
        runner = ExperimentRunner(cache=None, parallel=False)
        run = runner.run(TunePoint().config(seed=1, scale=SCALE))
        scores = score_run(run, TuneObjective())
        assert all(math.isfinite(v) for v in scores.values())
        assert scores["node_hours"] > 0
