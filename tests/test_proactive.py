"""Tests for the proactive capacity manager (repro.capacity.proactive)."""

import pytest

from repro.capacity import ProactiveConfig, ProactiveManager
from repro.jade.control_loop import InhibitionLock
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.obs.events import DecisionReason
from repro.obs.tracer import Tracer
from repro.simulation.kernel import SimKernel
from repro.workload.profiles import RampProfile


class FakeTier:
    """A TierManager stand-in recording grow/shrink calls."""

    def __init__(self, name: str, replicas: int = 1, can_grow: bool = True):
        self.tier_name = name
        self.replica_count = replicas
        self.can_grow = can_grow
        self.grows = 0
        self.shrinks = 0

    def grow(self) -> bool:
        if not self.can_grow:
            return False
        self.grows += 1
        self.replica_count += 1
        return True

    def shrink(self) -> bool:
        self.shrinks += 1
        self.replica_count -= 1
        return True


class Harness:
    """A ProactiveManager wired to fakes, driven by a real kernel.

    ``use_whatif=False`` keeps the unit tests purely analytic — the
    planner acts on its projection instead of forking branch simulations.
    """

    def __init__(self, config=None, app_replicas=1, db_replicas=1):
        self.kernel = SimKernel()
        self.app_tier = FakeTier("application", app_replicas)
        self.db_tier = FakeTier("database", db_replicas)
        self.inhibition = InhibitionLock(self.kernel, 60.0)
        self.load = 100.0
        self.manager = ProactiveManager(
            self.kernel,
            self.app_tier,
            self.db_tier,
            self.inhibition,
            load_provider=lambda: self.load,
            snapshot_source=lambda: pytest.fail("whatif disabled"),
            app_thresholds=(0.80, 0.38),
            db_thresholds=(0.75, 0.40),
            config=config
            or ProactiveConfig(plan_period_s=10.0, use_whatif=False),
        )

    def run_with_load(self, points):
        """Advance time, setting the offered load at each step."""
        self.manager.on_start()
        for t, load in points:
            self.load = load
            self.kernel.run(until=t)
        self.manager.on_stop()


def rising(end=100.0, start_load=100.0, slope=2.0):
    return [(t, start_load + slope * t) for t in range(10, int(end) + 1, 10)]


class TestProjectionPlanning:
    def test_rising_load_near_threshold_grows_early(self):
        h = Harness()
        # DB at 0.60 smoothed with load doubling over the horizon projects
        # past 0.85 * 0.75.
        h.manager._tier_cpu["db"] = 0.60
        h.run_with_load(rising())
        assert h.db_tier.grows >= 1
        assert h.manager.grows_triggered >= 1

    def test_cold_tier_never_grows(self):
        h = Harness()
        h.manager._tier_cpu["db"] = 0.20
        h.manager._tier_cpu["app"] = 0.20
        h.run_with_load(rising(slope=0.5))
        assert h.db_tier.grows == 0
        assert h.app_tier.grows == 0

    def test_no_cpu_reading_no_action(self):
        # NaN projection (no probe reading yet) must never actuate.
        h = Harness()
        h.run_with_load(rising(slope=10.0))
        assert h.db_tier.grows == 0
        assert h.manager.grows_triggered == 0

    def test_falling_load_shrinks_multi_replica_tier(self):
        h = Harness(db_replicas=3)
        h.manager._tier_cpu["db"] = 0.45
        h.run_with_load([(t, max(10.0, 300.0 - 4.0 * t)) for t in range(10, 101, 10)])
        assert h.db_tier.shrinks >= 1
        assert h.manager.shrinks_triggered >= 1

    def test_single_replica_tier_never_shrinks(self):
        h = Harness(db_replicas=1)
        h.manager._tier_cpu["db"] = 0.05
        h.run_with_load([(t, max(5.0, 200.0 - 4.0 * t)) for t in range(10, 101, 10)])
        assert h.db_tier.shrinks == 0

    def test_cpu_listener_feeds_projection(self):
        h = Harness()

        class Reading:
            smoothed = 0.7

        h.manager.cpu_listener("db")(Reading())
        assert h.manager._tier_cpu["db"] == 0.7


class TestInhibitionRouting:
    def test_held_lock_suppresses_decision(self):
        h = Harness()
        h.manager._tier_cpu["db"] = 0.75
        tracer = Tracer(run_id="t")
        h.manager.tracer = tracer
        assert h.inhibition.try_acquire("resize-db")  # reactive loop holds it
        h.manager.on_start()
        h.load = 300.0
        h.kernel.run(until=10.0)  # first planning tick, lock still held
        h.manager.on_stop()
        assert h.db_tier.grows == 0
        assert h.manager.decisions_suppressed >= 1
        suppressed = [
            r
            for r in tracer.records()
            if r["kind"] == "proactive-decision" and not r["executed"]
        ]
        assert suppressed
        assert suppressed[0]["reason"] == DecisionReason.INHIBITED

    def test_proactive_grow_holds_the_shared_lock(self):
        h = Harness()
        h.manager._tier_cpu["db"] = 0.75
        h.manager.on_start()
        h.load = 400.0
        h.kernel.run(until=10.0)
        h.manager.on_stop()
        assert h.db_tier.grows == 1
        # The reactive loops are now inhibited by the proactive action.
        assert h.inhibition.held
        assert not h.inhibition.try_acquire("resize-db")

    def test_busy_actuator_records_suppression(self):
        h = Harness()
        h.db_tier.can_grow = False
        h.manager._tier_cpu["db"] = 0.75
        tracer = Tracer(run_id="t")
        h.manager.tracer = tracer
        h.manager.on_start()
        h.load = 400.0
        h.kernel.run(until=10.0)
        h.manager.on_stop()
        assert h.manager.grows_triggered == 0
        assert h.manager.decisions_suppressed >= 1
        reasons = [
            r["reason"]
            for r in tracer.records()
            if r["kind"] == "proactive-decision" and not r["executed"]
        ]
        assert DecisionReason.ACTUATOR_BUSY in reasons


class TestTracing:
    def test_forecast_events_and_causality(self):
        h = Harness()
        h.manager._tier_cpu["db"] = 0.75
        tracer = Tracer(run_id="t")
        h.manager.tracer = tracer
        h.manager.on_start()
        h.load = 400.0
        h.kernel.run(until=10.0)
        h.manager.on_stop()
        records = tracer.records()
        forecasts = [r for r in records if r["kind"] == "forecast-issued"]
        decisions = [r for r in records if r["kind"] == "proactive-decision"]
        assert forecasts and decisions
        assert forecasts[0]["model"] == "trend"
        assert decisions[0]["reason"] == DecisionReason.PREDICTED_ABOVE_MAX
        # The decision chains back to the forecast that motivated it.
        assert decisions[0]["cause"] == forecasts[0]["seq"]

    def test_counters_track_forecasts(self):
        h = Harness()
        h.run_with_load(rising(end=50.0))
        assert h.manager.forecasts_issued == 5


class TestIntegration:
    def test_pool_exhaustion_under_overprovisioning(self):
        """An aggressive proactive policy on a tiny pool must run out of
        nodes gracefully: failed grows become suppressed decisions and the
        run still completes."""
        profile = RampProfile(
            base=80, peak=320, step_period_s=10.0, warmup_s=40.0, cooldown_s=40.0
        )
        config = ExperimentConfig(
            profile=profile,
            seed=9,
            managed=False,  # the proactive manager is the only actor
            proactive=True,
            proactive_config=ProactiveConfig(
                plan_period_s=10.0,
                use_whatif=False,
                grow_margin=0.1,  # grow on any warm projection
            ),
            pool_nodes=5,  # 2 balancers + tomcat1 + mysql1 + 1 spare
            sample_nodes=False,
        )
        system = ManagedSystem(config)
        tracer = Tracer(run_id="exhaustion")
        system._wire_tracer(tracer)
        system.run()
        proactive = system.proactive
        # The spare node was consumed, and at least one further grow hit
        # an exhausted pool and was recorded as a suppressed decision.
        assert proactive.grows_triggered >= 1
        assert proactive.decisions_suppressed >= 1
        assert (
            system.app_tier.grow_failures + system.db_tier.grow_failures >= 1
        )
        failures = [
            r for r in tracer.records() if r["kind"] == "node-failed"
        ]
        assert any(r["reason"] == "no-free-node" for r in failures)
        # The run itself completed despite the exhaustion.
        assert system.kernel.now >= profile.duration_s

    def test_proactive_system_traces_whatif_chain(self):
        """A real managed run with what-if enabled emits the full causal
        chain: forecast -> what-if evaluation -> proactive decision."""
        profile = RampProfile(
            base=80, peak=260, step_period_s=15.0, warmup_s=60.0, cooldown_s=60.0
        )
        config = ExperimentConfig(
            profile=profile,
            seed=11,
            managed=True,
            proactive=True,
            proactive_config=ProactiveConfig(
                plan_period_s=15.0,
                min_eval_interval_s=45.0,
                grow_margin=0.7,
                horizon_s=45.0,
                branch_warmup_s=40.0,
            ),
            sample_nodes=False,
        )
        system = ManagedSystem(config)
        tracer = Tracer(run_id="whatif-chain")
        system._wire_tracer(tracer)
        system.run()
        records = tracer.records()
        by_seq = {r["seq"]: r for r in records}
        evaluations = [r for r in records if r["kind"] == "whatif-evaluated"]
        assert evaluations, "expected at least one what-if evaluation"
        for ev in evaluations:
            assert by_seq[ev["cause"]]["kind"] == "forecast-issued"
            assert ev["candidates"] >= 1
            assert "/" in ev["best"]
