"""Unit tests for generator processes and signals."""

import pytest

from repro.simulation import Process, Signal, sleep, wait


def test_sleep_suspends_for_duration(kernel):
    out = []

    def proc():
        yield sleep(2.0)
        out.append(kernel.now)
        yield sleep(3.0)
        out.append(kernel.now)

    Process(kernel, proc())
    kernel.run()
    assert out == [2.0, 5.0]


def test_wait_resumes_with_signal_value(kernel):
    sig = Signal(kernel)
    got = []

    def waiter():
        value = yield wait(sig)
        got.append(value)

    def firer():
        yield sleep(1.5)
        sig.succeed("payload")

    Process(kernel, waiter())
    Process(kernel, firer())
    kernel.run()
    assert got == ["payload"]


def test_wait_on_already_fired_signal(kernel):
    sig = Signal(kernel)
    sig.succeed(7)
    got = []

    def waiter():
        value = yield wait(sig)
        got.append((value, kernel.now))

    Process(kernel, waiter())
    kernel.run()
    assert got == [(7, 0.0)]


def test_multiple_waiters_all_resume(kernel):
    sig = Signal(kernel)
    got = []

    def waiter(tag):
        value = yield wait(sig)
        got.append((tag, value))

    for tag in "abc":
        Process(kernel, waiter(tag))
    kernel.schedule(1.0, sig.succeed, 42)
    kernel.run()
    assert sorted(got) == [("a", 42), ("b", 42), ("c", 42)]


def test_signal_failure_raises_in_process(kernel):
    sig = Signal(kernel)
    caught = []

    def waiter():
        try:
            yield wait(sig)
        except RuntimeError as exc:
            caught.append(str(exc))

    Process(kernel, waiter())
    kernel.schedule(1.0, sig.fail, RuntimeError("boom"))
    kernel.run()
    assert caught == ["boom"]


def test_signal_fires_once_only(kernel):
    sig = Signal(kernel)
    sig.succeed(1)
    with pytest.raises(RuntimeError):
        sig.succeed(2)


def test_yielding_signal_directly_works(kernel):
    sig = Signal(kernel)
    got = []

    def waiter():
        value = yield sig
        got.append(value)

    Process(kernel, waiter())
    kernel.schedule(1.0, sig.succeed, "direct")
    kernel.run()
    assert got == ["direct"]


def test_done_signal_carries_return_value(kernel):
    def proc():
        yield sleep(1.0)
        return "result"

    p = Process(kernel, proc())
    kernel.run()
    assert p.done.fired
    assert p.done.value == "result"
    assert not p.alive


def test_kill_stops_suspended_process(kernel):
    out = []

    def proc():
        yield sleep(10.0)
        out.append("never")

    p = Process(kernel, proc())
    kernel.schedule(1.0, p.kill)
    kernel.run()
    assert out == []
    assert not p.alive
    assert p.done.fired


def test_kill_done_process_is_noop(kernel):
    def proc():
        yield sleep(1.0)

    p = Process(kernel, proc())
    kernel.run()
    p.kill()
    assert p.done.fired


def test_bad_yield_fails_process(kernel):
    def proc():
        yield "not a command"

    p = Process(kernel, proc())
    with pytest.raises(TypeError):
        kernel.run()
    assert not p.alive


def test_non_generator_rejected(kernel):
    with pytest.raises(TypeError):
        Process(kernel, lambda: None)


def test_nested_process_spawning(kernel):
    order = []

    def child():
        yield sleep(1.0)
        order.append(("child", kernel.now))

    def parent():
        order.append(("parent-start", kernel.now))
        p = Process(kernel, child())
        yield wait(p.done)
        order.append(("parent-end", kernel.now))

    Process(kernel, parent())
    kernel.run()
    assert order == [("parent-start", 0.0), ("child", 1.0), ("parent-end", 1.0)]


def test_callback_on_fired_signal_runs_soon(kernel):
    sig = Signal(kernel)
    sig.succeed("v")
    got = []
    sig.add_callback(lambda s: got.append(s.value))
    assert got == []  # deferred to the event loop
    kernel.run()
    assert got == ["v"]


def test_process_starts_at_creation_time(kernel):
    out = []

    def proc():
        out.append(kernel.now)
        yield sleep(0.5)

    kernel.schedule(3.0, lambda: Process(kernel, proc()))
    kernel.run()
    assert out == [3.0]
