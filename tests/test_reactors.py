"""Tests for the threshold reactors and the inhibition lock."""

import pytest

from repro.jade.control_loop import InhibitionLock
from repro.jade.reactors import AdaptiveThresholdReactor, ThresholdReactor
from repro.jade.sensors import CpuReading


class FakeTier:
    def __init__(self, replicas=1):
        self.replica_count = replicas
        self.calls = []
        self.accept = True

    def grow(self):
        self.calls.append("grow")
        if self.accept:
            self.replica_count += 1
        return self.accept

    def shrink(self):
        self.calls.append("shrink")
        if self.accept:
            self.replica_count -= 1
        return self.accept


def reading(kernel, smoothed, raw=None):
    return CpuReading(kernel.now, smoothed, raw if raw is not None else smoothed, 1)


def make_reactor(kernel, tier=None, **kwargs):
    tier = tier if tier is not None else FakeTier()
    lock = kwargs.pop("inhibition", InhibitionLock(kernel, 60.0))
    kwargs.setdefault("warmup_samples", 0)
    reactor = ThresholdReactor(kernel, tier, lock, **kwargs)
    return reactor, tier, lock


class TestInhibitionLock:
    def test_acquire_then_blocked(self, kernel):
        lock = InhibitionLock(kernel, 60.0)
        assert lock.try_acquire()
        assert not lock.try_acquire()
        assert lock.held

    def test_frees_after_duration(self, kernel):
        lock = InhibitionLock(kernel, 10.0)
        lock.try_acquire()
        kernel.run(until=10.0)
        assert lock.try_acquire()

    def test_counters(self, kernel):
        lock = InhibitionLock(kernel, 10.0)
        lock.try_acquire()
        lock.try_acquire()
        assert lock.acquisitions == 1
        assert lock.rejections == 1

    def test_negative_duration_rejected(self, kernel):
        with pytest.raises(ValueError):
            InhibitionLock(kernel, -1.0)


class TestThresholdReactor:
    def test_grow_above_max(self, kernel):
        reactor, tier, _ = make_reactor(kernel)
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow"]
        assert reactor.grows_triggered == 1

    def test_shrink_below_min(self, kernel):
        reactor, tier, _ = make_reactor(kernel, FakeTier(replicas=3))
        reactor.on_reading(reading(kernel, 0.1))
        assert tier.calls == ["shrink"]
        assert reactor.shrinks_triggered == 1

    def test_dead_band_does_nothing(self, kernel):
        reactor, tier, _ = make_reactor(kernel)
        reactor.on_reading(reading(kernel, 0.5))
        assert tier.calls == []

    def test_never_shrinks_below_min_replicas(self, kernel):
        reactor, tier, _ = make_reactor(kernel, FakeTier(replicas=1))
        reactor.on_reading(reading(kernel, 0.05))
        assert tier.calls == []
        # Symmetric with the at-cap path: a shrink stopped at the floor is
        # a suppressed decision too.
        assert reactor.decisions_suppressed == 1

    def test_floor_suppression_does_not_take_the_lock(self, kernel):
        reactor, tier, lock = make_reactor(kernel, FakeTier(replicas=1))
        reactor.on_reading(reading(kernel, 0.05))
        assert not lock.held
        assert reactor.shrinks_triggered == 0

    def test_nan_reading_is_an_explicit_no_data_decision(self, kernel):
        reactor, tier, lock = make_reactor(kernel)
        reactor.on_reading(reading(kernel, float("nan")))
        assert tier.calls == []
        assert reactor.no_data_decisions == 1
        # no-data is its own counter, not lumped into suppressions
        assert reactor.decisions_suppressed == 0
        assert not lock.held

    def test_nan_does_not_consume_warmup_decisions(self, kernel):
        """After NaN readings, a real reading still decides normally."""
        reactor, tier, _ = make_reactor(kernel)
        for _ in range(3):
            reactor.on_reading(reading(kernel, float("nan")))
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow"]
        assert reactor.no_data_decisions == 3

    def test_never_grows_above_max_replicas(self, kernel):
        reactor, tier, _ = make_reactor(
            kernel, FakeTier(replicas=3), max_replicas=3
        )
        reactor.on_reading(reading(kernel, 0.95))
        assert tier.calls == []
        assert reactor.decisions_suppressed == 1

    def test_inhibition_suppresses_consecutive_triggers(self, kernel):
        reactor, tier, _ = make_reactor(kernel)
        reactor.on_reading(reading(kernel, 0.9))
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow"]
        assert reactor.decisions_suppressed == 1

    def test_shared_inhibition_across_loops(self, kernel):
        lock = InhibitionLock(kernel, 60.0)
        r1, t1, _ = make_reactor(kernel, inhibition=lock)
        r2, t2, _ = make_reactor(kernel, FakeTier(replicas=3), inhibition=lock)
        r1.on_reading(reading(kernel, 0.9))
        r2.on_reading(reading(kernel, 0.1))  # blocked by r1's reconfiguration
        assert t1.calls == ["grow"]
        assert t2.calls == []

    def test_trigger_again_after_inhibition_expires(self, kernel):
        reactor, tier, _ = make_reactor(kernel)
        reactor.on_reading(reading(kernel, 0.9))
        kernel.run(until=61.0)
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow", "grow"]

    def test_warmup_skips_early_samples(self, kernel):
        tier = FakeTier()
        lock = InhibitionLock(kernel, 60.0)
        reactor = ThresholdReactor(kernel, tier, lock, warmup_samples=3)
        for _ in range(2):
            reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == []
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow"]

    def test_rejected_actuation_counts_suppressed(self, kernel):
        tier = FakeTier()
        tier.accept = False
        reactor, _, _ = make_reactor(kernel, tier)
        reactor.on_reading(reading(kernel, 0.9))
        assert reactor.grows_triggered == 0
        assert reactor.decisions_suppressed == 1

    def test_threshold_validation(self, kernel):
        lock = InhibitionLock(kernel, 60.0)
        with pytest.raises(ValueError):
            ThresholdReactor(kernel, FakeTier(), lock, max_threshold=0.3, min_threshold=0.5)
        with pytest.raises(ValueError):
            ThresholdReactor(kernel, FakeTier(), lock, min_replicas=0)

    def test_fresh_sample_gate(self, kernel):
        """With a probe attached, decisions wait for fresh evidence."""

        class FakeProbe:
            class window:
                sample_count = 3

        reactor, tier, _ = make_reactor(kernel, fresh_samples_required=5)
        reactor.probe = FakeProbe()
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == []
        FakeProbe.window.sample_count = 10
        reactor.on_reading(reading(kernel, 0.9))
        assert tier.calls == ["grow"]


class TestAdaptiveReactor:
    def make(self, kernel, **kwargs):
        tier = FakeTier(replicas=2)
        lock = InhibitionLock(kernel, 0.0)  # no inhibition: test adaptation
        reactor = AdaptiveThresholdReactor(
            kernel,
            tier,
            lock,
            warmup_samples=0,
            min_threshold=0.35,
            oscillation_window_s=100.0,
            widen_step=0.05,
            **kwargs,
        )
        return reactor, tier

    def test_oscillation_widens_band(self, kernel):
        reactor, tier = self.make(kernel)
        reactor.on_reading(reading(kernel, 0.9))   # grow
        kernel.run(until=10.0)
        reactor.on_reading(reading(kernel, 0.1))   # shrink soon after: oscillation
        assert reactor.min_threshold == pytest.approx(0.30)
        assert reactor.adaptations == 1

    def test_no_adaptation_for_slow_changes(self, kernel):
        reactor, tier = self.make(kernel)
        reactor.on_reading(reading(kernel, 0.9))
        kernel.run(until=500.0)  # beyond the oscillation window
        reactor.on_reading(reading(kernel, 0.1))
        assert reactor.min_threshold == pytest.approx(0.35)

    def test_band_floor_respected(self, kernel):
        reactor, tier = self.make(kernel, min_floor=0.30)
        for _ in range(10):
            reactor.on_reading(reading(kernel, 0.9))
            reactor.on_reading(reading(kernel, 0.1))
            tier.replica_count = 2
        assert reactor.min_threshold >= 0.30

    def test_relaxation_narrows_band_back(self, kernel):
        reactor, tier = self.make(kernel, relax_after_s=50.0)
        reactor.on_reading(reading(kernel, 0.9))
        kernel.run(until=10.0)
        reactor.on_reading(reading(kernel, 0.1))
        assert reactor.min_threshold < 0.35
        tier.replica_count = 2
        kernel.run(until=200.0)
        reactor.on_reading(reading(kernel, 0.9))  # quiet period passed
        assert reactor.min_threshold > 0.30
