"""Unit + property tests for the C-JDBC recovery log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.legacy.mysql import advance_digest
from repro.legacy.recovery_log import RecoveryLog


class TestRecoveryLog:
    def test_append_assigns_sequential_indexes(self):
        log = RecoveryLog()
        entries = [log.append(f"INSERT {i}", 0.01) for i in range(5)]
        assert [e.index for e in entries] == [0, 1, 2, 3, 4]
        assert log.next_index == 5
        assert len(log) == 5

    def test_write_ids_unique_and_increasing(self):
        log = RecoveryLog()
        ids = [log.append("w", 0.01).write_id for _ in range(10)]
        assert ids == sorted(set(ids))

    def test_get_by_index(self):
        log = RecoveryLog()
        log.append("a", 0.01)
        entry = log.append("b", 0.02)
        assert log.get(1) is entry

    def test_entries_from_suffix(self):
        log = RecoveryLog()
        for i in range(6):
            log.append(str(i), 0.01)
        suffix = list(log.entries_from(4))
        assert [e.sql for e in suffix] == ["4", "5"]

    def test_entries_from_negative_rejected(self):
        with pytest.raises(IndexError):
            RecoveryLog().entries_from(-1)

    def test_checkpoints(self):
        log = RecoveryLog()
        for _ in range(4):
            log.append("w", 0.01)
        log.set_checkpoint("backend1", 3)
        assert log.checkpoint("backend1") == 3
        assert log.checkpoint("ghost") is None
        log.drop_checkpoint("backend1")
        assert log.checkpoint("backend1") is None

    def test_checkpoint_bounds(self):
        log = RecoveryLog()
        log.append("w", 0.01)
        with pytest.raises(IndexError):
            log.set_checkpoint("b", 2)
        with pytest.raises(IndexError):
            log.set_checkpoint("b", -1)
        log.set_checkpoint("b", 1)  # == next_index is legal (fully caught up)


class TestDigest:
    def test_deterministic(self):
        a = advance_digest(advance_digest(0, 1), 2)
        b = advance_digest(advance_digest(0, 1), 2)
        assert a == b

    def test_order_sensitive(self):
        ab = advance_digest(advance_digest(0, 1), 2)
        ba = advance_digest(advance_digest(0, 2), 1)
        assert ab != ba

    @given(ids=st.lists(st.integers(min_value=1, max_value=10**9), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_replay_reproduces_digest(self, ids):
        """Replaying the same write sequence always produces the same
        digest — the property the recovery log's correctness rests on."""
        d1 = 0
        for i in ids:
            d1 = advance_digest(d1, i)
        d2 = 0
        for i in ids:
            d2 = advance_digest(d2, i)
        assert d1 == d2

    @given(
        ids=st.lists(
            st.integers(min_value=1, max_value=10**9),
            min_size=2,
            max_size=20,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_different_prefix_different_digest(self, ids):
        full = 0
        for i in ids:
            full = advance_digest(full, i)
        partial = 0
        for i in ids[:-1]:
            partial = advance_digest(partial, i)
        assert full != partial
