"""Unit and property tests for the CPU models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import CpuJob, FifoCpu, PsCpu, SimKernel, ThrashingCurve
from repro.simulation.resources import ResourceStopped, constant_capacity


def run_jobs(cpu, kernel, demands, submit_times=None):
    jobs = []
    for i, demand in enumerate(demands):
        t = 0.0 if submit_times is None else submit_times[i]
        job = CpuJob(kernel, demand)
        kernel.schedule_at(t, cpu.submit, job)
        jobs.append(job)
    kernel.run()
    return jobs


class TestPsCpu:
    def test_single_job_takes_its_demand(self, kernel):
        cpu = PsCpu(kernel)
        (job,) = run_jobs(cpu, kernel, [2.5])
        assert job.completed_at == pytest.approx(2.5)

    def test_equal_jobs_share_equally(self, kernel):
        cpu = PsCpu(kernel)
        jobs = run_jobs(cpu, kernel, [1.0, 1.0, 1.0])
        for job in jobs:
            assert job.completed_at == pytest.approx(3.0)

    def test_short_job_finishes_first(self, kernel):
        cpu = PsCpu(kernel)
        short, long_ = run_jobs(cpu, kernel, [1.0, 3.0])
        # Both share until the short one finishes at t=2 (each got 1s of
        # service); the long one then runs alone for its remaining 2s.
        assert short.completed_at == pytest.approx(2.0)
        assert long_.completed_at == pytest.approx(4.0)

    def test_late_arrival_shares_remaining(self, kernel):
        cpu = PsCpu(kernel)
        a, b = run_jobs(cpu, kernel, [2.0, 2.0], submit_times=[0.0, 1.0])
        # a runs alone [0,1] (1s served), then shares: a needs 1 more
        # => at rate 1/2 finishes at t=3; b then alone, 1s left, t=4.
        assert a.completed_at == pytest.approx(3.0)
        assert b.completed_at == pytest.approx(4.0)

    def test_speed_scales_service(self, kernel):
        cpu = PsCpu(kernel, speed=2.0)
        (job,) = run_jobs(cpu, kernel, [3.0])
        assert job.completed_at == pytest.approx(1.5)

    def test_zero_demand_completes_immediately(self, kernel):
        cpu = PsCpu(kernel)
        job = CpuJob(kernel, 0.0)
        cpu.submit(job)
        assert job.done.fired
        assert job.completed_at == 0.0

    def test_busy_time_accounting(self, kernel):
        cpu = PsCpu(kernel)
        run_jobs(cpu, kernel, [1.0, 1.0], submit_times=[0.0, 5.0])
        # busy [0,1] and [5,6]
        assert cpu.busy_time() == pytest.approx(2.0)

    def test_busy_time_with_overlap_counts_wall_clock(self, kernel):
        cpu = PsCpu(kernel)
        run_jobs(cpu, kernel, [1.0, 1.0], submit_times=[0.0, 0.0])
        assert cpu.busy_time() == pytest.approx(2.0)  # both finish at t=2

    def test_completed_and_service_counters(self, kernel):
        cpu = PsCpu(kernel)
        run_jobs(cpu, kernel, [0.5, 1.5])
        assert cpu.completed == 2
        assert cpu.service_delivered == pytest.approx(2.0)

    def test_abort_all_fails_jobs(self, kernel):
        cpu = PsCpu(kernel)
        job = CpuJob(kernel, 10.0)
        cpu.submit(job)
        errors = []
        job.done.add_callback(lambda s: errors.append(s.error))
        kernel.schedule(1.0, cpu.abort_all)
        kernel.run()
        assert isinstance(errors[0], ResourceStopped)
        assert cpu.active_jobs == 0

    def test_submit_after_abort_works(self, kernel):
        cpu = PsCpu(kernel)
        first = CpuJob(kernel, 10.0)
        cpu.submit(first)
        first.done.add_callback(lambda s: None)
        kernel.schedule(1.0, cpu.abort_all)
        kernel.run()
        fresh = CpuJob(kernel, 1.0)
        cpu.submit(fresh)
        kernel.run()
        assert fresh.completed_at == pytest.approx(kernel.now)

    def test_negative_demand_rejected(self, kernel):
        with pytest.raises(ValueError):
            CpuJob(kernel, -1.0)

    def test_thrashing_slows_service(self, kernel):
        curve = ThrashingCurve(knee=2, slope=1.0, floor=0.01)
        cpu = PsCpu(kernel, capacity_model=curve)
        # 4 jobs: capacity(4) = 1/(1+2) = 1/3; per-job rate 1/12.
        jobs = run_jobs(cpu, kernel, [1.0] * 4)
        assert all(j.completed_at > 4.0 for j in jobs)

    def test_sojourn_property(self, kernel):
        cpu = PsCpu(kernel)
        (job,) = run_jobs(cpu, kernel, [2.0])
        assert job.sojourn == pytest.approx(2.0)


class TestFifoCpu:
    def test_jobs_serve_in_order(self, kernel):
        cpu = FifoCpu(kernel)
        jobs = run_jobs(cpu, kernel, [1.0, 2.0, 0.5])
        assert [j.completed_at for j in jobs] == [
            pytest.approx(1.0),
            pytest.approx(3.0),
            pytest.approx(3.5),
        ]

    def test_busy_time(self, kernel):
        cpu = FifoCpu(kernel)
        run_jobs(cpu, kernel, [1.0, 1.0], submit_times=[0.0, 10.0])
        assert cpu.busy_time() == pytest.approx(2.0)

    def test_abort_clears_queue(self, kernel):
        cpu = FifoCpu(kernel)
        jobs = [CpuJob(kernel, 5.0) for _ in range(3)]
        errors = []
        for j in jobs:
            cpu.submit(j)
            j.done.add_callback(lambda s: errors.append(s.error))
        kernel.schedule(1.0, cpu.abort_all)
        kernel.run()
        assert len(errors) == 3
        assert all(isinstance(e, ResourceStopped) for e in errors)

    def test_zero_demand(self, kernel):
        cpu = FifoCpu(kernel)
        job = CpuJob(kernel, 0.0)
        cpu.submit(job)
        assert job.done.fired

    def test_speed(self, kernel):
        cpu = FifoCpu(kernel, speed=4.0)
        (job,) = run_jobs(cpu, kernel, [2.0])
        assert job.completed_at == pytest.approx(0.5)


class TestThrashingCurve:
    def test_full_capacity_below_knee(self):
        curve = ThrashingCurve(knee=10, slope=0.1)
        assert curve(0) == 1.0
        assert curve(10) == 1.0

    def test_decay_above_knee(self):
        curve = ThrashingCurve(knee=10, slope=0.1, floor=0.01)
        assert curve(20) == pytest.approx(1.0 / 2.0)
        assert curve(11) < 1.0

    def test_floor_respected(self):
        curve = ThrashingCurve(knee=0, slope=10.0, floor=0.25)
        assert curve(1000) == 0.25

    def test_monotone_nonincreasing(self):
        curve = ThrashingCurve(knee=5, slope=0.3)
        values = [curve(n) for n in range(50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            ThrashingCurve(knee=-1)
        with pytest.raises(ValueError):
            ThrashingCurve(slope=-0.1)
        with pytest.raises(ValueError):
            ThrashingCurve(floor=0.0)

    def test_constant_capacity_is_one(self):
        assert constant_capacity(0) == 1.0
        assert constant_capacity(10**6) == 1.0


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@given(
    demands=st.lists(
        st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=12
    )
)
@settings(max_examples=60, deadline=None)
def test_ps_conserves_work(demands):
    """Total service delivered equals total demand; the last completion is
    exactly the sum of demands when all jobs arrive together (unit rate)."""
    kernel = SimKernel()
    cpu = PsCpu(kernel)
    jobs = [CpuJob(kernel, d) for d in demands]
    for j in jobs:
        cpu.submit(j)
    kernel.run()
    assert cpu.service_delivered == pytest.approx(sum(demands))
    last = max(j.completed_at for j in jobs)
    assert last == pytest.approx(sum(demands), rel=1e-6)


@given(
    demands=st.lists(
        st.floats(min_value=0.01, max_value=5.0), min_size=2, max_size=12
    )
)
@settings(max_examples=60, deadline=None)
def test_ps_completion_order_matches_demand_order(demands):
    """With simultaneous arrivals, PS completes jobs in demand order."""
    kernel = SimKernel()
    cpu = PsCpu(kernel)
    jobs = [CpuJob(kernel, d) for d in demands]
    for j in jobs:
        cpu.submit(j)
    kernel.run()
    by_demand = sorted(jobs, key=lambda j: j.demand)
    completions = [j.completed_at for j in by_demand]
    assert all(a <= b + 1e-9 for a, b in zip(completions, completions[1:]))


@given(
    demands=st.lists(
        st.floats(min_value=0.01, max_value=3.0), min_size=1, max_size=10
    ),
    gaps=st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_fifo_completions_are_sequential(demands, gaps):
    kernel = SimKernel()
    cpu = FifoCpu(kernel)
    jobs = []
    t = 0.0
    for demand, gap in zip(demands, gaps):
        t += gap
        job = CpuJob(kernel, demand)
        kernel.schedule_at(t, cpu.submit, job)
        jobs.append(job)
    kernel.run()
    done = [j.completed_at for j in jobs]
    assert all(a <= b + 1e-9 for a, b in zip(done, done[1:]))
    assert cpu.service_delivered == pytest.approx(sum(demands[: len(gaps)]))


class TestAbortAllReuse:
    """abort_all must leave the resource in its initial state so a
    replica's CPU can be reused after a crash/stop without ghost wakes or
    stale virtual time."""

    def test_abort_fails_inflight_jobs(self, kernel):
        cpu = PsCpu(kernel)
        jobs = [CpuJob(kernel, 5.0) for _ in range(3)]
        for j in jobs:
            cpu.submit(j)
        kernel.schedule(1.0, cpu.abort_all, RuntimeError("crash"))
        kernel.run()
        assert cpu.completed == 0
        for j in jobs:
            assert isinstance(j.done.error, RuntimeError)

    def test_resource_reusable_after_abort(self, kernel):
        """Fresh jobs after an abort see exact PS timing — the virtual
        clock and wake bookkeeping were reset, not left mid-flight."""
        cpu = PsCpu(kernel)
        for _ in range(4):
            cpu.submit(CpuJob(kernel, 10.0))
        kernel.schedule(1.0, cpu.abort_all, RuntimeError("crash"))
        kernel.run()

        start = kernel.now
        fresh = [CpuJob(kernel, 2.0), CpuJob(kernel, 2.0)]
        for j in fresh:
            cpu.submit(j)
        kernel.run()
        # Two equal jobs sharing one unit-speed CPU: both finish in 4 s.
        for j in fresh:
            assert j.completed_at == pytest.approx(start + 4.0)
        assert cpu.completed == 2

    def test_stale_wake_after_abort_is_inert(self, kernel):
        """The wake posted before the abort still fires (posts cannot be
        cancelled) but must complete nothing."""
        cpu = PsCpu(kernel)
        cpu.submit(CpuJob(kernel, 2.0))
        kernel.schedule(0.5, cpu.abort_all, RuntimeError("crash"))
        kernel.run()
        assert cpu.completed == 0
        assert kernel.pending == 0

    def test_utilization_window_reset(self, kernel):
        cpu = PsCpu(kernel)
        cpu.submit(CpuJob(kernel, 3.0))
        kernel.schedule(1.0, cpu.abort_all, RuntimeError("crash"))
        kernel.run()
        assert cpu._vnow == 0.0
        assert cpu._live == 0


class TestWeightedJobs:
    """A weight-K CpuJob stands for K concurrent identical requests whose
    summed demand travels on one job (the cohort fast path)."""

    def test_weight_must_be_positive(self, kernel):
        with pytest.raises(ValueError):
            CpuJob(kernel, 1.0, weight=0)

    def test_weighted_job_times_like_constituents(self, kernel):
        """One weight-2 job with summed demand 2.0 completes when two
        interleaved weight-1 jobs of demand 1.0 would: at t=2."""
        cpu = PsCpu(kernel)
        job = CpuJob(kernel, 2.0, weight=2)
        cpu.submit(job)
        kernel.run()
        assert job.completed_at == pytest.approx(2.0)
        assert cpu.completed == 2

    def test_weighted_job_contends_like_constituents(self, kernel):
        """Against a weight-1 competitor, a weight-2 job claims two PS
        shares: the competitor sees a 3-way split, not a 2-way one."""
        cpu = PsCpu(kernel)
        heavy = CpuJob(kernel, 2.0, weight=2)
        light = CpuJob(kernel, 1.0)
        cpu.submit(heavy)
        cpu.submit(light)
        kernel.run()
        # Identical per-constituent demand (1.0 each over 3 shares): all
        # three constituents finish together at t=3.
        assert light.completed_at == pytest.approx(3.0)
        assert heavy.completed_at == pytest.approx(3.0)
        assert cpu.completed == 3

    def test_fifo_counts_constituents(self, kernel):
        cpu = FifoCpu(kernel)
        job = CpuJob(kernel, 1.0, weight=5)
        cpu.submit(job)
        kernel.run()
        assert cpu.completed == 5
