"""Unit tests for deterministic named RNG streams."""

import numpy as np
import pytest

from repro.simulation import RngStreams


def test_same_seed_same_name_same_sequence():
    a = RngStreams(seed=123).get("x")
    b = RngStreams(seed=123).get("x")
    assert np.allclose(a.random(100), b.random(100))


def test_different_names_differ():
    streams = RngStreams(seed=123)
    a = streams.get("alpha").random(50)
    b = streams.get("beta").random(50)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RngStreams(seed=1).get("x").random(50)
    b = RngStreams(seed=2).get("x").random(50)
    assert not np.allclose(a, b)


def test_get_returns_same_generator_object():
    streams = RngStreams(seed=5)
    assert streams.get("n") is streams.get("n")


def test_fresh_restarts_stream():
    streams = RngStreams(seed=5)
    first = streams.get("n").random(10)
    fresh = streams.fresh("n").random(10)
    assert np.allclose(first, fresh)


def test_composition_insensitivity():
    """Creating extra streams must not perturb existing ones."""
    s1 = RngStreams(seed=9)
    baseline = s1.fresh("target").random(20)
    s2 = RngStreams(seed=9)
    for i in range(50):
        s2.get(f"noise-{i}")
    assert np.allclose(s2.get("target").random(20), baseline)


def test_non_integer_seed_rejected():
    with pytest.raises(TypeError):
        RngStreams(seed="abc")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Federation seed sharding: one independent RNG universe per region
# ----------------------------------------------------------------------
def test_region_seed_stable_and_distinct():
    from repro.federation.spec import region_seed

    assert region_seed(1, "us-east") == region_seed(1, "us-east")
    assert region_seed(1, "us-east") != region_seed(1, "eu-west")
    assert region_seed(1, "us-east") != region_seed(2, "us-east")


def test_region_streams_independent():
    """The same stream name in two regions draws different values, and a
    region's streams depend only on its own (seed, name) — adding or
    removing sibling regions cannot perturb them."""
    from repro.federation.spec import region_seed

    a = RngStreams(region_seed(7, "us-east")).get("client-0").random(50)
    b = RngStreams(region_seed(7, "eu-west")).get("client-0").random(50)
    assert not np.allclose(a, b)
    # region seed is a pure function of (fed seed, region name): the
    # same region in a bigger federation replays identically
    again = RngStreams(region_seed(7, "us-east")).get("client-0").random(50)
    assert np.allclose(a, again)
