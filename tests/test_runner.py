"""The parallel cached experiment runner."""

import json

import numpy as np
import pytest

from repro.jade.system import ExperimentConfig
from repro.runner import (
    CompletedRun,
    ExperimentRunner,
    ResultCache,
    code_fingerprint,
    describe_config,
    execute_config,
)
from repro.runner.bench import _stats, check_against
from repro.workload.profiles import ConstantProfile


def tiny_config(seed=1, managed=True, clients=10, duration=60.0):
    return ExperimentConfig(
        profile=ConstantProfile(clients, duration),
        seed=seed,
        managed=managed,
        tail_s=5.0,
    )


# ----------------------------------------------------------------------
# Config description and keys
# ----------------------------------------------------------------------
class TestDescribeConfig:
    def test_stable_across_instances(self):
        assert describe_config(tiny_config()) == describe_config(tiny_config())

    def test_distinguishes_every_knob(self):
        base = describe_config(tiny_config())
        assert describe_config(tiny_config(seed=2)) != base
        assert describe_config(tiny_config(managed=False)) != base
        assert describe_config(tiny_config(clients=11)) != base
        assert describe_config(tiny_config(duration=61.0)) != base

    def test_includes_profile_type(self):
        assert "ConstantProfile" in describe_config(tiny_config())

    def test_rejects_callables(self):
        cfg = tiny_config()
        cfg.profile = lambda: None
        with pytest.raises(TypeError):
            describe_config(cfg)

    def test_key_folds_in_code_fingerprint(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg = tiny_config()
        assert cache.key_for(cfg, "aaa") != cache.key_for(cfg, "bbb")
        assert cache.key_for(cfg, "aaa") == cache.key_for(cfg, "aaa")

    def test_fingerprint_tracks_source(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_fingerprint(tmp_path)
        assert before == code_fingerprint(tmp_path)  # memoized, stable

        import repro.runner.fingerprint as fp

        fp._cached.clear()
        (tmp_path / "a.py").write_text("x = 2\n")
        assert code_fingerprint(tmp_path) != before


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg = tiny_config()
        key = cache.key_for(cfg)
        assert cache.load(key) is None
        run = execute_config(cfg)
        cache.store(key, run, config=cfg)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.summary() == run.summary()
        assert np.array_equal(
            loaded.collector.latencies.values, run.collector.latencies.values
        )
        assert cache.hits == 1 and cache.misses == 1

    def test_sidecar_is_greppable_json(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cfg = tiny_config()
        key = cache.key_for(cfg)
        cache.store(key, execute_config(cfg), config=cfg)
        meta = json.loads((tmp_path / f"{key}.json").read_text())
        assert meta["key"] == key
        assert meta["summary"]["completed"] > 0
        assert meta["config"]["profile"]["__type__"] == "ConstantProfile"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        key = cache.key_for(tiny_config())
        cache.root.mkdir(parents=True, exist_ok=True)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.load(key) is None


# ----------------------------------------------------------------------
# Cache hygiene: stats, LRU pruning, clearing
# ----------------------------------------------------------------------
class TestCacheHygiene:
    def fill(self, cache, n=4, size=1000):
        """Store n entries with distinct, strictly increasing mtimes."""
        import os

        keys = []
        for i in range(n):
            key = f"{'0' * 60}{i:04d}"
            cache.store(key, {"blob": "x" * size, "i": i})
            payload = cache.root / f"{key}.pkl"
            # Deterministic LRU order without sleeping between stores.
            os.utime(payload, (1000.0 + i, 1000.0 + i))
            keys.append(key)
        return keys

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=0)
        self.fill(cache, n=3)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 3000
        assert stats["dir"] == str(tmp_path)

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=0)
        keys = self.fill(cache, n=4)
        per_entry = cache.stats()["bytes"] // 4
        evicted = cache.prune(max_bytes=per_entry * 2)
        assert evicted == keys[:2]  # oldest first
        assert cache.load(keys[3]) is not None
        assert cache.load(keys[0]) is None

    def test_load_refreshes_recency(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=0)
        keys = self.fill(cache, n=3)
        assert cache.load(keys[0]) is not None  # touch the oldest
        per_entry = cache.stats()["bytes"] // 3
        evicted = cache.prune(max_bytes=per_entry)
        assert keys[0] not in evicted  # survived: recently used
        assert keys[1] in evicted

    def test_store_prunes_when_capped(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=0)
        self.fill(cache, n=2)
        per_entry = cache.stats()["bytes"] // 2
        capped = ResultCache(root=tmp_path, max_bytes=per_entry * 2)
        capped.store("f" * 64, {"blob": "y" * 1000})
        assert capped.stats()["bytes"] <= per_entry * 2 + 100

    def test_zero_cap_disables_pruning(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=0)
        self.fill(cache, n=4)
        assert cache.prune() == []
        assert cache.stats()["entries"] == 4

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=0)
        self.fill(cache, n=3)
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0

    def test_max_bytes_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert ResultCache(root=tmp_path).max_bytes == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert ResultCache(root=tmp_path).max_bytes == 0


# ----------------------------------------------------------------------
# Runner: parallel == serial, cache short-circuiting
# ----------------------------------------------------------------------
class TestExperimentRunner:
    def test_parallel_matches_serial_exactly(self):
        configs = {"m": tiny_config(managed=True), "s": tiny_config(managed=False)}
        par = ExperimentRunner(cache=None, parallel=True).run_many(configs)
        ser = ExperimentRunner(cache=None, parallel=False).run_many(configs)
        for label in configs:
            assert par[label].summary() == ser[label].summary()
            assert np.array_equal(
                par[label].collector.latencies.values,
                ser[label].collector.latencies.values,
            )
            assert par[label].events_processed == ser[label].events_processed

    def test_cache_short_circuits_second_batch(self, tmp_path):
        configs = {"a": tiny_config(seed=1), "b": tiny_config(seed=2)}
        first = ExperimentRunner(cache=ResultCache(root=tmp_path))
        out1 = first.run_many(configs)
        assert first.cache.misses == 2 and first.cache.hits == 0

        second = ExperimentRunner(cache=ResultCache(root=tmp_path))
        out2 = second.run_many(configs)
        assert second.cache.hits == 2 and second.cache.misses == 0
        for label in configs:
            assert out1[label].summary() == out2[label].summary()

    def test_run_seeds_labels_by_seed(self):
        runner = ExperimentRunner(cache=None, parallel=False)
        out = runner.run_seeds(lambda s: tiny_config(seed=s), seeds=(1, 2))
        assert set(out) == {1, 2}
        assert out[1].config.seed == 1
        assert out[2].config.seed == 2

    def test_completed_run_exposes_benchmark_surface(self):
        run = execute_config(tiny_config())
        assert isinstance(run, CompletedRun)
        assert run.app_tier.grows_completed >= 0
        assert run.db_tier.shrinks_completed >= 0
        assert run.proactive is None
        assert run.collector.completed_requests > 0
        assert run.config.seed == 1
        assert run.events_processed > 0
        assert run.summary()["completed"] == run.collector.completed_requests


# ----------------------------------------------------------------------
# Bench aggregation and the perf-smoke gate
# ----------------------------------------------------------------------
class TestBench:
    def test_stats_confidence_interval(self):
        out = _stats([10.0, 12.0, 14.0])
        assert out["mean"] == pytest.approx(12.0)
        assert out["n"] == 3
        assert out["ci95"] == pytest.approx(1.96 * 2.0 / np.sqrt(3))
        assert _stats([5.0])["ci95"] == 0.0

    def test_check_against_passes_generous_reference(self, tmp_path):
        ref = tmp_path / "ref.json"
        ref.write_text(
            json.dumps(
                {
                    "micro": {
                        "kernel_10k_events": {"best_s": 100.0},
                        "ps_cpu_5k_jobs": {"best_s": 100.0},
                    }
                }
            )
        )
        ok, lines = check_against(str(ref), tolerance=0.25, rounds=1)
        assert ok
        assert len(lines) == 2

    def test_check_against_flags_regression(self, tmp_path):
        ref = tmp_path / "ref.json"
        ref.write_text(
            json.dumps(
                {
                    "micro": {
                        "kernel_10k_events": {"best_s": 1e-9},
                        "ps_cpu_5k_jobs": {"best_s": 1e-9},
                    }
                }
            )
        )
        ok, lines = check_against(str(ref), tolerance=0.25, rounds=1)
        assert not ok
        assert any("REGRESSION" in line for line in lines)
