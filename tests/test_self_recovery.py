"""Tests for the self-recovery manager (failure detection + repair)."""

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import ConstantProfile


def make_system(**kwargs):
    cfg = ExperimentConfig(
        profile=ConstantProfile(20, kwargs.pop("duration", 600.0)),
        managed=False,
        recovery=True,
        sample_nodes=False,
        **kwargs,
    )
    return ManagedSystem(cfg)


class TestSelfRecovery:
    def test_app_replica_crash_is_repaired(self):
        system = make_system()
        kernel = system.kernel
        system.recovery.start()
        system.emulator.start()
        victim_node = system.app_tier.replicas[0].node
        kernel.schedule(100.0, victim_node.crash)
        kernel.run(until=400.0)
        assert system.app_tier.replica_count == 1
        replica = system.app_tier.replicas[0]
        assert replica.node is not victim_node
        assert replica.component.lifecycle_controller.is_started()
        assert system.recovery.failures_seen == 1
        assert system.app_tier.repairs_completed == 1

    def test_requests_flow_again_after_repair(self):
        system = make_system()
        kernel = system.kernel
        system.recovery.start()
        system.emulator.start()
        victim_node = system.app_tier.replicas[0].node
        kernel.schedule(100.0, victim_node.crash)
        kernel.run(until=500.0)
        col = system.collector
        # Failures occurred around the crash, but completions resumed.
        late = col.latencies.window(300.0, 500.0)
        assert len(late) > 0
        assert col.failed_requests > 0

    def test_db_replica_crash_repaired_with_consistent_state(self):
        system = make_system()
        kernel = system.kernel
        controller = system.cjdbc.content.controller
        system.recovery.start()
        # Grow to 2 DB replicas so the service survives the crash.
        system.db_tier.grow()
        kernel.run(until=60.0)
        system.emulator.start()
        victim_node = system.db_tier.replicas[-1].node
        kernel.schedule(100.0, victim_node.crash)
        kernel.run(until=600.0)
        assert system.db_tier.replica_count == 2
        backends = controller.enabled_backends()
        assert len(backends) == 2
        assert len({b.server.state_digest for b in backends}) == 1

    def test_repair_waits_when_pool_is_empty(self):
        system = make_system(pool_nodes=4)  # exactly the initial deployment
        kernel = system.kernel
        system.recovery.start()
        victim_node = system.app_tier.replicas[0].node
        kernel.schedule(50.0, victim_node.crash)
        kernel.run(until=200.0)
        # No free node: replica gone, repair pending.
        assert system.app_tier.replica_count == 0
        assert system.recovery.pending_repairs >= 0  # retried, not crashed
        assert system.app_tier.grow_failures > 0

    def test_retry_repairs_after_pool_frees_up(self):
        # 5 nodes: 4 taken by the initial deployment, 1 free — which the
        # DB grow consumes, so the app repair finds an exhausted pool.
        system = make_system(pool_nodes=5)
        kernel = system.kernel
        system.recovery.start()
        system.db_tier.grow()
        kernel.run(until=60.0)
        assert system.cluster.free_count == 0
        victim_node = system.app_tier.replicas[0].node
        kernel.schedule_at(100.0, victim_node.crash)
        kernel.run(until=150.0)
        # Repair started but could not grow: queued for retry.
        assert system.app_tier.replica_count == 0
        assert system.recovery.pending_repairs == 1
        # Shrinking the DB tier frees a node; the periodic retry grows
        # the app replica back without a fresh failure notification.
        system.db_tier.shrink()
        kernel.run(until=400.0)
        assert system.app_tier.replica_count == 1
        assert system.recovery.pending_repairs == 0
        assert system.app_tier.replicas[0].node is not victim_node
        assert system.app_tier.replicas[0].component.lifecycle_controller.is_started()

    def test_simultaneous_failures_detected_in_tier_order(self):
        system = make_system()
        kernel = system.kernel
        system.recovery.start()
        system.db_tier.grow()
        kernel.run(until=60.0)
        app_node = system.app_tier.replicas[0].node
        db_node = system.db_tier.replicas[-1].node
        kernel.schedule_at(100.0, app_node.crash)
        kernel.schedule_at(100.0, db_node.crash)
        kernel.run(until=400.0)
        # Both failures are seen in the same detection sweep and both
        # repairs complete; the sweep walks tiers in registration order.
        assert system.recovery.failures_seen == 2
        detections = system.recovery.detections
        assert [d["tier"] for d in detections] == ["application", "database"]
        assert detections[0]["t"] == detections[1]["t"]
        assert system.app_tier.replica_count == 1
        assert system.db_tier.replica_count == 2
        assert system.app_tier.repairs_completed == 1
        assert system.db_tier.repairs_completed == 1

    def test_stopped_manager_does_not_repair(self):
        system = make_system()
        kernel = system.kernel
        system.recovery.start()
        system.recovery.stop()
        victim_node = system.app_tier.replicas[0].node
        kernel.schedule(50.0, victim_node.crash)
        kernel.run(until=300.0)
        assert system.app_tier.replica_count == 1  # record still listed
        assert system.recovery.failures_seen == 0

    def test_manager_is_a_component(self):
        system = make_system()
        comp = system.recovery.composite
        assert comp.is_composite()
        names = [c.name for c in comp.content_controller.sub_components()]
        assert "recovery-sensor" in names
