"""Tests for the Jade sensors."""

import pytest

from repro.cluster import Node, make_nodes
from repro.jade.sensors import (
    CpuProbe,
    HeartbeatSensor,
    ResponseTimeProbe,
    UtilizationSampler,
)


class TestUtilizationSampler:
    def test_independent_observers(self, kernel):
        node = Node(kernel, "n1")
        a, b = UtilizationSampler(), UtilizationSampler()
        a.sample(node)  # seed both anchors at t=0
        b.sample(node)
        node.run_job(1.0)
        kernel.run(until=2.0)
        # Both observers see the same history despite sampling separately.
        assert a.sample(node) == pytest.approx(0.5)
        assert b.sample(node) == pytest.approx(0.5)

    def test_first_observation_seeds_anchor(self, kernel):
        """A node first observed mid-run reads 0.0 — its history before the
        observation (here a full second of busy CPU) must not be averaged
        into the sample."""
        node = Node(kernel, "n1")
        sampler = UtilizationSampler()
        node.run_job(1.0)
        kernel.run(until=2.0)
        assert sampler.sample(node) == 0.0
        # Subsequent samples measure only the delta since the anchor.
        node.run_job(1.0)
        kernel.run(until=3.0)
        assert sampler.sample(node) == pytest.approx(1.0)

    def test_delta_semantics(self, kernel):
        node = Node(kernel, "n1")
        sampler = UtilizationSampler()
        sampler.sample(node)  # seed at t=0
        node.run_job(1.0)
        kernel.run(until=1.0)
        assert sampler.sample(node) == pytest.approx(1.0)
        kernel.run(until=2.0)
        assert sampler.sample(node) == pytest.approx(0.0)

    def test_forget(self, kernel):
        node = Node(kernel, "n1")
        sampler = UtilizationSampler()
        sampler.sample(node)
        node.run_job(2.0)
        kernel.run(until=1.0)
        sampler.sample(node)
        sampler.forget(node)
        kernel.run(until=2.0)
        # After forgetting, the node is unknown again: the next sample
        # only re-seeds the anchor.
        assert sampler.sample(node) == 0.0
        kernel.run(until=3.0)
        assert sampler.sample(node) == pytest.approx(0.0)  # job done at t=2


class TestCpuProbe:
    def test_periodic_sampling_and_smoothing(self, kernel):
        nodes = make_nodes(kernel, 2)
        probe = CpuProbe(kernel, lambda: nodes, window_s=10.0, period_s=1.0)
        readings = []
        probe.subscribe(readings.append)
        probe.on_start()
        # Load node1 fully for 5 s; node2 idle -> spatial average 0.5
        # (the first sample of each node only seeds its anchor: 0.0).
        nodes[0].run_job(5.0)
        kernel.run(until=5.0)
        assert len(readings) == 5
        assert readings[0].raw == 0.0
        assert readings[-1].raw == pytest.approx(0.5, abs=0.01)
        assert readings[-1].smoothed == pytest.approx(0.4, abs=0.01)
        assert readings[-1].node_count == 2

    def test_moving_average_lags_raw(self, kernel):
        nodes = make_nodes(kernel, 1)
        probe = CpuProbe(kernel, lambda: nodes, window_s=60.0)
        readings = []
        probe.subscribe(readings.append)
        probe.on_start()
        kernel.run(until=30.0)  # idle 30 s
        nodes[0].run_job(1e9)   # saturate forever
        kernel.run(until=60.0)
        last = readings[-1]
        assert last.raw == pytest.approx(1.0)
        assert 0.4 < last.smoothed < 0.6  # half the window was idle

    def test_probe_cost_consumes_cpu(self, kernel):
        nodes = make_nodes(kernel, 1)
        probe = CpuProbe(
            kernel, lambda: nodes, window_s=10.0, probe_demand_s=0.01
        )
        probe.on_start()
        kernel.run(until=100.0)
        assert nodes[0].cpu.busy_time() == pytest.approx(1.0, rel=0.05)

    def test_down_nodes_skipped(self, kernel):
        nodes = make_nodes(kernel, 2)
        probe = CpuProbe(kernel, lambda: nodes, window_s=10.0)
        readings = []
        probe.subscribe(readings.append)
        probe.on_start()
        nodes[0].run_job(1e9)
        nodes[1].crash()
        kernel.run(until=3.0)
        assert readings[-1].node_count == 1
        assert readings[-1].raw == pytest.approx(1.0)

    def test_empty_tier_produces_no_reading(self, kernel):
        probe = CpuProbe(kernel, lambda: [], window_s=10.0)
        readings = []
        probe.subscribe(readings.append)
        probe.on_start()
        kernel.run(until=3.0)
        assert readings == []
        assert probe.samples_taken == 3

    def test_stop_halts_sampling(self, kernel):
        nodes = make_nodes(kernel, 1)
        probe = CpuProbe(kernel, lambda: nodes, window_s=10.0)
        probe.on_start()
        kernel.run(until=2.0)
        probe.on_stop()
        kernel.run(until=10.0)
        assert probe.samples_taken == 2
        assert not probe.running

    def test_dynamic_node_set_followed(self, kernel):
        nodes = make_nodes(kernel, 2)
        visible = [nodes[0]]
        probe = CpuProbe(kernel, lambda: list(visible), window_s=5.0)
        readings = []
        probe.subscribe(readings.append)
        probe.on_start()
        kernel.run(until=2.0)
        assert readings[-1].node_count == 1
        visible.append(nodes[1])
        kernel.run(until=4.0)
        assert readings[-1].node_count == 2

    def test_bad_period_rejected(self, kernel):
        with pytest.raises(ValueError):
            CpuProbe(kernel, lambda: [], window_s=10.0, period_s=0.0)


class FakeServer:
    def __init__(self, node):
        self.node = node
        self.running = True


class TestHeartbeatSensor:
    def test_detects_node_crash_once(self, kernel):
        nodes = make_nodes(kernel, 2)
        servers = [FakeServer(n) for n in nodes]
        sensor = HeartbeatSensor(kernel, lambda: servers)
        detected = []
        sensor.subscribe(detected.append)
        sensor.on_start()
        kernel.schedule(2.5, nodes[0].crash)
        kernel.run(until=10.0)
        assert detected == [servers[0]]
        assert sensor.failures_detected == 1

    def test_detects_process_death(self, kernel):
        nodes = make_nodes(kernel, 1)
        server = FakeServer(nodes[0])
        sensor = HeartbeatSensor(kernel, lambda: [server])
        detected = []
        sensor.subscribe(detected.append)
        sensor.on_start()

        def kill():
            server.running = False

        kernel.schedule(3.0, kill)
        kernel.run(until=6.0)
        assert detected == [server]

    def test_recovered_server_can_fail_again(self, kernel):
        nodes = make_nodes(kernel, 1)
        server = FakeServer(nodes[0])
        sensor = HeartbeatSensor(kernel, lambda: [server])
        detected = []
        sensor.subscribe(detected.append)
        sensor.on_start()
        kernel.schedule(1.5, lambda: setattr(server, "running", False))
        kernel.schedule(3.5, lambda: setattr(server, "running", True))
        kernel.schedule(5.5, lambda: setattr(server, "running", False))
        kernel.run(until=8.0)
        assert detected == [server, server]

    def test_stop(self, kernel):
        server = FakeServer(make_nodes(kernel, 1)[0])
        sensor = HeartbeatSensor(kernel, lambda: [server])
        sensor.on_start()
        sensor.on_stop()
        server.running = False
        kernel.run(until=5.0)
        assert sensor.failures_detected == 0


class TestResponseTimeProbe:
    def test_smooths_latencies(self, kernel):
        probe = ResponseTimeProbe(kernel, window_s=10.0)
        seen = []
        probe.subscribe(lambda t, v: seen.append(v))
        for i in range(5):
            probe.observe(float(i), 0.1 * (i + 1))
        assert seen[-1] == pytest.approx(sum(0.1 * (i + 1) for i in range(5)) / 5)

    def test_window_eviction(self, kernel):
        probe = ResponseTimeProbe(kernel, window_s=2.0)
        seen = []
        probe.subscribe(lambda t, v: seen.append(v))
        probe.observe(0.0, 10.0)
        probe.observe(5.0, 1.0)
        assert seen[-1] == pytest.approx(1.0)
