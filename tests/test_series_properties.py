"""Property-based tests for the metrics series containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import StepSeries, TimeSeries

times_and_values = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0),
        st.floats(min_value=-100.0, max_value=100.0),
    ),
    min_size=1,
    max_size=60,
).map(sorted)


@given(samples=times_and_values, width=st.floats(min_value=0.5, max_value=200.0))
@settings(max_examples=60, deadline=None)
def test_bucket_mean_preserves_value_bounds(samples, width):
    series = TimeSeries()
    for t, v in samples:
        series.append(t, v)
    bucketed = series.bucket_mean(width)
    values = [v for _, v in samples]
    eps = 1e-9
    for _, mean in bucketed:
        assert min(values) - eps <= mean <= max(values) + eps


@given(samples=times_and_values, width=st.floats(min_value=0.5, max_value=200.0))
@settings(max_examples=60, deadline=None)
def test_bucket_mean_conserves_weighted_total(samples, width):
    """Sum over buckets of (bucket mean * bucket count) == sum of samples."""
    series = TimeSeries()
    for t, v in samples:
        series.append(t, v)
    t_arr = series.times
    edges = np.arange(0.0, float(t_arr[-1]) + width, width)
    idx = np.digitize(t_arr, edges) - 1
    bucketed = series.bucket_mean(width)
    total = 0.0
    for center, mean in bucketed:
        b = int(np.digitize([center], edges)[0] - 1)
        count = int(np.count_nonzero(idx == b))
        total += mean * count
    assert total == pytest.approx(sum(v for _, v in samples), rel=1e-6, abs=1e-6)


@given(
    changes=st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=100.0),
            st.integers(min_value=0, max_value=10),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_step_series_sample_matches_value_at(changes):
    series = StepSeries(initial=1.0)
    t = 0.0
    for dt, value in changes:
        t += dt
        series.set(t, float(value))
    query_times = np.linspace(0.0, t + 10.0, 50)
    vectorized = series.sample(query_times)
    scalar = np.array([series.value_at(q) for q in query_times])
    assert np.array_equal(vectorized, scalar)


@given(
    changes=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=50.0),
            st.integers(min_value=1, max_value=5),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_step_series_time_weighted_mean_bounds(changes):
    series = StepSeries(initial=2.0)
    t = 0.0
    for dt, value in changes:
        t += dt
        series.set(t, float(value))
    horizon = t + 5.0
    mean = series.time_weighted_mean(horizon)
    all_values = [2.0] + [float(v) for _, v in changes]
    assert min(all_values) - 1e-9 <= mean <= max(all_values) + 1e-9


@given(
    changes=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=50.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_step_series_riemann_sum_equals_weighted_mean(changes):
    """time_weighted_mean equals a dense numerical integration."""
    series = StepSeries(initial=1.0)
    t = 0.0
    for dt, value in changes:
        t += dt
        series.set(t, value)
    horizon = t + 1.0
    grid = np.linspace(0.0, horizon, 20_001)[:-1]  # left Riemann sum
    dense = series.sample(grid).mean()
    assert series.time_weighted_mean(horizon) == pytest.approx(dense, abs=0.02)
