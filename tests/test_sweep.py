"""The ``repro sweep`` grid fan-out (repro.runner.sweep + CLI)."""

import csv
import json

import pytest

from repro.cli import main
from repro.runner import (
    ExperimentRunner,
    ResultCache,
    SweepPoint,
    SweepSpec,
    run_sweep,
    write_sweep_csv,
    write_sweep_json,
)

SMALL = dict(
    seeds=(1, 2), scales=(0.05,), policies=("static", "managed"), cohorts=(1,)
)


class TestSweepSpec:
    def test_grid_is_deterministic_cross_product(self):
        spec = SweepSpec(**SMALL)
        grid = spec.grid()
        assert len(grid) == 4
        assert grid == spec.grid()  # same order every time
        assert [p.label for p in grid] == [
            "static-s1-x0.05-c1",
            "static-s2-x0.05-c1",
            "managed-s1-x0.05-c1",
            "managed-s2-x0.05-c1",
        ]

    def test_point_validates_inputs(self):
        with pytest.raises(ValueError, match="unknown policy"):
            SweepPoint("bogus", 1, 0.1, 1)
        with pytest.raises(ValueError):
            SweepPoint("static", 1, 0.0, 1)
        with pytest.raises(ValueError):
            SweepPoint("static", 1, 0.1, 0)

    def test_point_config_maps_policy(self):
        static = SweepPoint("static", 1, 0.1, 1).config()
        managed = SweepPoint("managed", 1, 0.1, 1).config()
        proactive = SweepPoint("proactive", 1, 0.1, 1).config()
        assert not static.managed and not static.proactive
        assert managed.managed and not managed.proactive
        assert proactive.managed and proactive.proactive

    def test_point_config_scales_cohort(self):
        cfg = SweepPoint("static", 1, 0.1, 4, peak=500).config()
        assert cfg.cohort == 4
        assert cfg.hardware_scale == 4.0
        assert cfg.profile.base == 320
        assert cfg.profile.peak_clients == 2000


class TestRunSweep:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("sweep-cache")
        runner = ExperimentRunner(cache=ResultCache(cache_dir))
        spec = SweepSpec(**SMALL)
        cold = run_sweep(spec, runner)
        warm = run_sweep(spec, runner)
        return cold, warm

    def test_one_row_per_cell_in_grid_order(self, result):
        cold, _ = result
        assert [r["label"] for r in cold.rows] == [
            p.label for p in SweepSpec(**SMALL).grid()
        ]

    def test_rows_carry_summary_fields(self, result):
        cold, _ = result
        row = cold.rows[0]
        for field in ("completed", "throughput_rps", "latency_p95_ms",
                      "app_replicas_max", "wall_time_s"):
            assert field in row
        assert row["completed"] > 0

    def test_warm_pass_resolves_from_cache(self, result):
        cold, warm = result
        assert cold.cache == {**cold.cache, "hits": 0, "misses": 4}
        assert warm.cache["hits"] == 4 and warm.cache["misses"] == 0
        assert warm.rows == cold.rows

    def test_csv_and_json_round_trip(self, result, tmp_path):
        cold, _ = result
        csv_path = write_sweep_csv(cold.rows, tmp_path / "sweep.csv")
        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(cold.rows)
        assert rows[0]["label"] == cold.rows[0]["label"]
        assert float(rows[0]["throughput_rps"]) == pytest.approx(
            cold.rows[0]["throughput_rps"]
        )

        json_path = write_sweep_json(cold, tmp_path / "sweep.json")
        record = json.loads(json_path.read_text())
        assert record["runs"] == 4
        assert record["spec"]["cells"] == 4
        assert record["rows"][0]["label"] == cold.rows[0]["label"]


class TestSweepCli:
    def test_cli_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--seeds", "1", "--scales", "0.05",
             "--policies", "static,managed", "--cohorts", "1",
             "--csv", str(csv_path), "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 cells" in out
        assert "static-s1-x0.05-c1" in out

        with open(csv_path) as fh:
            rows = list(csv.DictReader(fh))
        assert [r["label"] for r in rows] == [
            "static-s1-x0.05-c1", "managed-s1-x0.05-c1"
        ]
        record = json.loads(json_path.read_text())
        assert record["runs"] == 2
        assert record["cache"]["misses"] == 2

        # A second invocation resolves entirely from the cache.
        assert main(
            ["sweep", "--seeds", "1", "--scales", "0.05",
             "--policies", "static,managed", "--cohorts", "1",
             "--json", str(json_path)]
        ) == 0
        record = json.loads(json_path.read_text())
        assert record["cache"]["hits"] == 2
        assert record["cache"]["misses"] == 0
