"""Tests for ManagedSystem configuration knobs."""

import pytest

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import ConstantProfile


class TestConfigKnobs:
    def test_pool_size_controls_headroom(self):
        cfg = ExperimentConfig(
            profile=ConstantProfile(10, 30.0), pool_nodes=5, sample_nodes=False
        )
        system = ManagedSystem(cfg)
        # 4 nodes taken by the initial deployment.
        assert system.cluster.free_count == 1

    def test_minimum_pool_rejected(self):
        cfg = ExperimentConfig(profile=ConstantProfile(10, 30.0), pool_nodes=3)
        from repro.cluster import NoFreeNodeError

        with pytest.raises(NoFreeNodeError):
            ManagedSystem(cfg)

    def test_thrashing_disabled(self):
        cfg = ExperimentConfig(
            profile=ConstantProfile(10, 30.0), thrashing=False, sample_nodes=False
        )
        system = ManagedSystem(cfg)
        assert system.nodes[0].cpu.capacity_model(10_000) == 1.0

    def test_thrashing_enabled_by_default(self):
        cfg = ExperimentConfig(profile=ConstantProfile(10, 30.0), sample_nodes=False)
        system = ManagedSystem(cfg)
        assert system.nodes[0].cpu.capacity_model(10_000) < 1.0

    def test_sampling_disabled(self):
        cfg = ExperimentConfig(profile=ConstantProfile(10, 60.0), sample_nodes=False)
        system = ManagedSystem(cfg)
        system.run()
        assert len(system.collector.node_cpu) == 0

    def test_unmanaged_has_no_optimizer_but_records_tier_cpu(self):
        cfg = ExperimentConfig(profile=ConstantProfile(10, 60.0), managed=False)
        system = ManagedSystem(cfg)
        system.run()
        assert system.optimizer is None
        assert len(system.collector.tier_cpu["database"]) > 50

    def test_jade_memory_only_when_managed(self):
        managed = ManagedSystem(
            ExperimentConfig(profile=ConstantProfile(10, 30.0), managed=True)
        )
        unmanaged = ManagedSystem(
            ExperimentConfig(profile=ConstantProfile(10, 30.0), managed=False)
        )
        assert "jade:mgmt" in managed.nodes[0].footprints
        assert "jade:mgmt" not in unmanaged.nodes[0].footprints

    def test_custom_duration_run(self):
        cfg = ExperimentConfig(profile=ConstantProfile(10, 500.0), tail_s=0.0)
        system = ManagedSystem(cfg)
        system.run(duration_s=50.0)
        assert system.kernel.now == pytest.approx(50.0)

    def test_client_timeout_plumbed(self):
        cfg = ExperimentConfig(
            profile=ConstantProfile(5, 30.0), client_timeout_s=3.0
        )
        system = ManagedSystem(cfg)
        assert system.emulator.request_timeout_s == 3.0

    def test_involved_nodes_tracks_tier_growth(self):
        cfg = ExperimentConfig(profile=ConstantProfile(5, 30.0), sample_nodes=False)
        system = ManagedSystem(cfg)
        before = len(system.involved_nodes())
        system.app_tier.grow()
        system.kernel.run(until=60.0)
        assert len(system.involved_nodes()) == before + 1

    def test_entry_routes_through_plb(self):
        cfg = ExperimentConfig(profile=ConstantProfile(5, 30.0), sample_nodes=False)
        system = ManagedSystem(cfg)
        from repro.legacy import WebRequest

        req = WebRequest(
            system.kernel, "ViewItem", app_demand_pre=0.01, db_demand=0.02
        )
        system.entry(req)
        system.kernel.run()
        assert req.latency is not None
        assert req.hops[0] == "plb"

    def test_summary_keys_stable(self):
        cfg = ExperimentConfig(profile=ConstantProfile(5, 60.0))
        system = ManagedSystem(cfg)
        system.run()
        assert set(system.summary()) == {
            "completed",
            "failed",
            "throughput_rps",
            "latency_mean_ms",
            "latency_p95_ms",
            "app_replicas_max",
            "db_replicas_max",
            "node_cpu_mean",
            "node_mem_mean",
        }

    def test_node_speed_scales_capacity(self):
        slow = ManagedSystem(
            ExperimentConfig(
                profile=ConstantProfile(80, 200.0), node_speed=1.0, seed=3
            )
        )
        fast = ManagedSystem(
            ExperimentConfig(
                profile=ConstantProfile(80, 200.0), node_speed=2.0, seed=3
            )
        )
        slow.run()
        fast.run()
        # Same offered load, double the hardware: roughly half the CPU.
        ratio = fast.summary()["node_cpu_mean"] / slow.summary()["node_cpu_mean"]
        assert 0.35 < ratio < 0.7
