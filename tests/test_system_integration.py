"""End-to-end integration tests on the full managed system.

These exercise the complete reproduction pipeline: ADL deployment, legacy
request flow, control loops, resizing, metrics.  Scenarios are shortened
(minutes of simulated time, not the full 3000 s ramp) to keep the suite
fast; the full-scale runs live in benchmarks/.
"""

import pytest

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import ConstantProfile, PiecewiseProfile


class TestMediumLoad:
    """80 clients: the Table 1 operating point."""

    @pytest.fixture(scope="class")
    def run(self):
        cfg = ExperimentConfig(profile=ConstantProfile(80, 300.0), seed=5)
        system = ManagedSystem(cfg)
        system.run()
        return system

    def test_throughput_near_12_rps(self, run):
        assert run.summary()["throughput_rps"] == pytest.approx(12.0, rel=0.15)

    def test_no_reconfiguration_triggered(self, run):
        assert run.app_tier.grows_completed == 0
        assert run.db_tier.grows_completed == 0
        assert run.app_tier.shrinks_completed == 0
        assert run.db_tier.shrinks_completed == 0

    def test_no_failed_requests(self, run):
        assert run.collector.failed_requests == 0

    def test_latency_is_interactive(self, run):
        assert run.summary()["latency_mean_ms"] < 200.0

    def test_node_metrics_sampled(self, run):
        assert len(run.collector.node_cpu) > 250
        assert 0.05 < run.collector.node_cpu.mean() < 0.3
        assert 0.1 < run.collector.node_memory.mean() < 0.4

    def test_architecture_is_sound(self, run):
        from repro.fractal import verify_architecture

        assert verify_architecture(run.app.root) == []


class TestHeavyLoad:
    """A step to 300 clients: the DB tier must scale out."""

    @pytest.fixture(scope="class")
    def run(self):
        profile = PiecewiseProfile([(0.0, 80), (60.0, 300)], duration_s=900.0)
        cfg = ExperimentConfig(profile=profile, seed=6, tail_s=30.0)
        system = ManagedSystem(cfg)
        system.run()
        return system

    def test_db_tier_scaled_out(self, run):
        assert run.db_tier.replica_count >= 2
        assert run.db_tier.grows_completed >= 1

    def test_replicas_consistent_after_sync(self, run):
        backends = run.cjdbc.content.controller.enabled_backends()
        digests = {b.server.state_digest for b in backends}
        assert len(digests) == 1

    def test_cpu_pulled_back_between_thresholds(self, run):
        series = run.collector.tier_cpu["database"]
        tail = series.window(700.0, 900.0)
        cfg = run.config
        assert tail.mean() < cfg.db_loop.max_threshold

    def test_reconfiguration_events_logged(self, run):
        assert any("grow" in d for _, d in run.collector.reconfigurations)

    def test_workload_tracked(self, run):
        assert run.collector.workload.value_at(30.0) == 80
        assert run.collector.workload.value_at(120.0) == 300


class TestScaleDown:
    """Load drop: the tier shrinks and nodes return to the pool."""

    def test_shrink_after_load_drop(self):
        profile = PiecewiseProfile(
            [(0.0, 300), (600.0, 40)], duration_s=1400.0
        )
        cfg = ExperimentConfig(profile=profile, seed=7, tail_s=30.0)
        system = ManagedSystem(cfg)
        system.run()
        assert system.db_tier.grows_completed >= 1
        assert system.db_tier.shrinks_completed >= 1
        assert system.db_tier.replica_count == 1
        # All previously-grown nodes returned to the free pool.
        assert system.cluster.free_count == 3


class TestDeterminism:
    def test_same_seed_reproduces_run(self):
        def run_once():
            cfg = ExperimentConfig(profile=ConstantProfile(60, 200.0), seed=42)
            system = ManagedSystem(cfg)
            col = system.run()
            return (
                col.completed_requests,
                round(col.latencies.values.sum(), 9),
                system.kernel.events_processed,
            )

        assert run_once() == run_once()

    def test_different_seed_differs(self):
        def run_once(seed):
            cfg = ExperimentConfig(profile=ConstantProfile(60, 200.0), seed=seed)
            return ManagedSystem(cfg).run().latencies.values.sum()

        assert run_once(1) != run_once(2)


class TestIntrusivity:
    """Table 1's protocol: medium load with and without Jade."""

    def test_jade_memory_overhead_visible_cpu_overhead_negligible(self):
        def run_once(managed):
            cfg = ExperimentConfig(
                profile=ConstantProfile(80, 300.0), seed=9, managed=managed
            )
            system = ManagedSystem(cfg)
            system.run()
            return system.summary()

        with_jade = run_once(True)
        without = run_once(False)
        # Throughput unchanged.
        assert with_jade["throughput_rps"] == pytest.approx(
            without["throughput_rps"], rel=0.05
        )
        # Memory: higher with Jade (management components on every node).
        assert with_jade["node_mem_mean"] > without["node_mem_mean"]
        # CPU: no perceptible overhead (< 1 percentage point).
        assert abs(with_jade["node_cpu_mean"] - without["node_cpu_mean"]) < 0.01


class TestStaticSaturation:
    """Without Jade, a heavy load saturates the 1+1 deployment (Fig. 8)."""

    def test_latency_explodes_without_jade(self):
        profile = PiecewiseProfile([(0.0, 450)], duration_s=600.0)
        cfg = ExperimentConfig(profile=profile, seed=8, managed=False, tail_s=30.0)
        system = ManagedSystem(cfg)
        col = system.run()
        late = col.latencies.window(400.0, 600.0)
        assert late.mean() > 5.0  # seconds — catastrophic for a web page

    def test_db_cpu_saturates(self):
        profile = PiecewiseProfile([(0.0, 450)], duration_s=600.0)
        cfg = ExperimentConfig(profile=profile, seed=8, managed=False, tail_s=30.0)
        system = ManagedSystem(cfg)
        col = system.run()
        tail = col.tier_cpu["database"].window(400.0, 600.0)
        assert tail.mean() > 0.95
