"""Tests for workload trace capture and replay."""

import pytest

from repro.metrics import MetricsCollector
from repro.simulation import RngStreams, SimKernel
from repro.workload import ClientEmulator, ConstantProfile
from repro.workload.traces import (
    RequestRecord,
    TraceRecorder,
    TraceReplayer,
    WorkloadTrace,
)


def capture_trace(kernel, clients=10, duration=60.0):
    """Record the stream a small emulated population produces against an
    instant-response entry point."""

    def instant(request):
        request.complete(kernel)

    recorder = TraceRecorder(kernel, instant)
    emulator = ClientEmulator(
        kernel,
        entry=recorder,
        profile=ConstantProfile(clients, duration),
        collector=MetricsCollector(),
        streams=RngStreams(21),
    )
    emulator.start()
    kernel.run(until=duration)
    return recorder.trace


class TestTraceCapture:
    def test_records_every_request(self, kernel):
        trace = capture_trace(kernel)
        assert len(trace) > 20
        assert trace.duration_s <= 60.0

    def test_records_are_time_ordered(self, kernel):
        trace = capture_trace(kernel)
        times = [r.t for r in trace]
        assert times == sorted(times)

    def test_write_fraction_near_mix(self, kernel):
        trace = capture_trace(kernel, clients=40, duration=300.0)
        assert 0.08 < trace.write_fraction() < 0.25

    def test_out_of_order_append_rejected(self):
        trace = WorkloadTrace()
        trace.append(RequestRecord(5.0, "x", False, False, 0, 0, 0, 0, None))
        with pytest.raises(ValueError):
            trace.append(RequestRecord(1.0, "x", False, False, 0, 0, 0, 0, None))


class TestPersistence:
    def test_save_load_roundtrip(self, kernel, tmp_path):
        trace = capture_trace(kernel)
        path = tmp_path / "trace.jsonl"
        trace.save(str(path))
        loaded = WorkloadTrace.load(str(path))
        assert len(loaded) == len(trace)
        assert all(a == b for a, b in zip(loaded, trace))


class TestReplay:
    def test_replay_reproduces_arrivals_and_demands(self, kernel):
        trace = capture_trace(kernel)
        replay_kernel = SimKernel()
        seen = []

        def sink(request):
            seen.append(
                (replay_kernel.now, request.interaction, request.db_demand)
            )
            request.complete(replay_kernel)

        TraceReplayer(replay_kernel, trace, sink).start()
        replay_kernel.run()
        assert len(seen) == len(trace)
        for (t, inter, db), record in zip(seen, trace):
            assert t == pytest.approx(record.t)
            assert inter == record.interaction
            assert db == pytest.approx(record.db)

    def test_replay_through_real_stack(self, stack):
        # Capture against a trivial sink (separate kernel), then replay
        # through the legacy chain and check latencies are collected; the
        # default offset aligns the first arrival with the stack's clock.
        trace = capture_trace(SimKernel(), clients=5, duration=30.0)
        collector = MetricsCollector()
        replayer = TraceReplayer(stack.kernel, trace, stack.plb.handle, collector)
        replayer.start()
        stack.kernel.run()
        assert collector.completed_requests == len(trace)
        assert collector.failed_requests == 0

    def test_identical_trace_identical_results(self, kernel):
        trace = capture_trace(kernel)

        def run_replay():
            k = SimKernel()
            collector = MetricsCollector()

            def delayed(request):
                k.schedule(0.01, request.complete, k)

            TraceReplayer(k, trace, delayed, collector).start()
            k.run()
            return collector.completed_requests, tuple(collector.latencies.values)

        assert run_replay() == run_replay()
