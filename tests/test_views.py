"""Tests for composition-with-sharing and architectural views (§3.2)."""

import pytest

from repro.fractal import (
    Component,
    IllegalContentError,
    architecture_report,
    iter_components,
    verify_architecture,
)
from repro.fractal.views import build_view, software_view, topology_view


class Dummy:
    def __init__(self, node=None):
        self.node = node


class TestSharing:
    def test_shared_component_in_two_composites(self):
        home = Component("home", composite=True)
        view = Component("view", composite=True)
        leaf = Component("leaf", content=Dummy())
        home.content_controller.add(leaf)
        view.content_controller.add(leaf, shared=True)
        assert leaf.parent is home
        assert view in leaf.shared_parents
        assert leaf in view.content_controller.sub_components()

    def test_double_share_rejected(self):
        home = Component("home", composite=True)
        view = Component("view", composite=True)
        leaf = Component("leaf", content=Dummy())
        home.content_controller.add(leaf)
        view.content_controller.add(leaf, shared=True)
        with pytest.raises(IllegalContentError):
            view.content_controller.add(leaf, shared=True)

    def test_removing_shared_reference_keeps_component_running(self):
        home = Component("home", composite=True)
        view = Component("view", composite=True)
        leaf = Component("leaf", content=Dummy())
        home.content_controller.add(leaf)
        view.content_controller.add(leaf, shared=True)
        leaf.start()
        view.content_controller.remove(leaf)  # no stop required
        assert leaf.lifecycle_controller.is_started()
        assert leaf.parent is home
        assert view not in leaf.shared_parents

    def test_primary_removal_still_requires_stop(self):
        home = Component("home", composite=True)
        leaf = Component("leaf", content=Dummy())
        home.content_controller.add(leaf)
        leaf.start()
        with pytest.raises(IllegalContentError):
            home.content_controller.remove(leaf)

    def test_starting_both_parents_is_idempotent(self):
        events = []

        class Tracker:
            def on_start(self, component):
                events.append("start")

        home = Component("home", composite=True)
        view = Component("view", composite=True)
        leaf = Component("leaf", content=Tracker())
        home.content_controller.add(leaf)
        view.content_controller.add(leaf, shared=True)
        home.start()
        view.start()
        assert events == ["start"]

    def test_iteration_visits_shared_once(self):
        root = Component("root", composite=True)
        home = Component("home", composite=True)
        view = Component("view", composite=True)
        leaf = Component("leaf", content=Dummy())
        root.content_controller.add(home)
        root.content_controller.add(view)
        home.content_controller.add(leaf)
        view.content_controller.add(leaf, shared=True)
        names = [c.name for c in iter_components(root)]
        assert names.count("leaf") == 1

    def test_verify_accepts_sharing(self):
        root = Component("root", composite=True)
        home = Component("home", composite=True)
        view = Component("view", composite=True)
        leaf = Component("leaf", content=Dummy())
        root.content_controller.add(home)
        root.content_controller.add(view)
        home.content_controller.add(leaf)
        view.content_controller.add(leaf, shared=True)
        assert verify_architecture(root) == []


@pytest.fixture
def deployed(kernel, lan, directory):
    """A small deployed application to build views over."""
    from repro.cluster import ClusterManager, make_nodes
    from repro.fractal import parse_adl
    from repro.jade.deployment import DeploymentService
    from repro.wrappers import default_factory_registry

    cluster = ClusterManager(make_nodes(kernel, 6))
    deployer = DeploymentService(
        kernel, default_factory_registry(), cluster, directory, None, lan
    )
    adl = """
    <definition name="app">
      <component name="mysql" type="mysql"/>
      <component name="cjdbc" type="cjdbc"/>
      <component name="plb" type="plb"/>
      <component name="tomcat" type="tomcat" replicas="2"/>
      <binding client="cjdbc.backends" server="mysql.mysql"/>
      <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
      <binding client="plb.workers" server="tomcat.http"/>
    </definition>
    """
    return deployer.deploy(parse_adl(adl))


class TestViews:
    def test_topology_view_groups_by_node(self, deployed):
        view = topology_view(deployed.root)
        groups = {
            g.name: [c.name for c in g.content_controller.sub_components()]
            for g in view.content_controller.sub_components()
        }
        # One node per component (spec order: mysql, cjdbc, plb, tomcat x2).
        assert groups["topology:node1"] == ["mysql"]
        assert groups["topology:node4"] == ["tomcat1"]
        assert groups["topology:node5"] == ["tomcat2"]

    def test_software_view_groups_by_kind(self, deployed):
        view = software_view(deployed.root)
        groups = {
            g.name: sorted(c.name for c in g.content_controller.sub_components())
            for g in view.content_controller.sub_components()
        }
        assert groups["software:tomcat"] == ["tomcat1", "tomcat2"]
        assert groups["software:mysql"] == ["mysql"]

    def test_views_reference_not_copy(self, deployed):
        view = topology_view(deployed.root)
        tomcat1 = deployed.instances("tomcat")[0]
        in_view = next(
            c
            for g in view.content_controller.sub_components()
            for c in g.content_controller.sub_components()
            if c.name == "tomcat1"
        )
        assert in_view is tomcat1

    def test_view_stays_consistent_with_reality(self, deployed):
        """Stopping the real component is visible through the view."""
        deployed.start()
        view = software_view(deployed.root)
        tomcat1 = deployed.instances("tomcat")[0]
        tomcat1.stop()
        in_view = next(
            c
            for g in view.content_controller.sub_components()
            for c in g.content_controller.sub_components()
            if c.name == "tomcat1"
        )
        assert not in_view.lifecycle_controller.is_started()

    def test_report_renders_views(self, deployed):
        view = topology_view(deployed.root)
        report = architecture_report(view)
        assert "topology:node1" in report

    def test_custom_grouping(self, deployed):
        view = build_view(
            "by-letter", deployed.root, lambda c: c.name[0]
        )
        names = {g.name for g in view.content_controller.sub_components()}
        assert "by-letter:t" in names
        assert "by-letter:m" in names
