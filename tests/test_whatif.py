"""Tests for the what-if engine (repro.capacity.whatif).

The two load-bearing guarantees from the module docstring:

* forking with the same seed twice yields **byte-identical** candidate
  outcome reports, and
* forking never mutates the parent run.
"""

import math

import pytest

from repro.capacity import (
    CostModel,
    LinearTrendForecaster,
    SystemSnapshot,
    WhatIfEngine,
    run_to_fork,
)
from repro.capacity.whatif import (
    BALANCER_NODES,
    Candidate,
    default_candidates,
    warm_fingerprint,
)
from repro.runner.cache import ResultCache
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload import DEFAULT_CALIBRATION
from repro.workload.profiles import RampProfile

#: a compressed ramp that crosses the DB grow threshold quickly
RAMP = dict(base=80, peak=260, step_period_s=15.0, warmup_s=60.0, cooldown_s=60.0)
FORK_AT = 150.0


def build_system(seed: int = 11) -> ManagedSystem:
    return ManagedSystem(
        ExperimentConfig(
            profile=RampProfile(**RAMP), seed=seed, managed=True,
            sample_nodes=False,
        )
    )


def make_engine() -> WhatIfEngine:
    # Short windows keep the branch simulations cheap in the suite.
    return WhatIfEngine(horizon_s=45.0, warmup_s=40.0, cost_model=CostModel())


def forecast_from(system: ManagedSystem):
    forecaster = LinearTrendForecaster()
    for t, clients in system.collector.workload.changes:
        forecaster.observe(t, clients)
    return forecaster.predict(45.0, 15.0)


@pytest.fixture(scope="module")
def fork():
    system = build_system()
    snapshot = run_to_fork(system, FORK_AT)
    return system, snapshot, forecast_from(system)


class TestDeterminism:
    def test_same_fork_twice_is_byte_identical(self, fork):
        _, snapshot, forecast = fork
        engine = make_engine()
        first = engine.report(engine.evaluate(snapshot, forecast))
        second = engine.report(engine.evaluate(snapshot, forecast))
        assert first == second

    def test_independent_parents_same_seed_agree(self, fork):
        _, snapshot, forecast = fork
        other = build_system()
        other_snapshot = run_to_fork(other, FORK_AT)
        assert other_snapshot == snapshot
        report_a = make_engine().report(make_engine().evaluate(snapshot, forecast))
        report_b = make_engine().report(
            make_engine().evaluate(other_snapshot, forecast_from(other))
        )
        assert report_a == report_b

    def test_different_seed_differs(self, fork):
        _, snapshot, forecast = fork
        other = build_system(seed=12)
        other_snapshot = run_to_fork(other, FORK_AT)
        report_a = make_engine().report(make_engine().evaluate(snapshot, forecast))
        report_b = make_engine().report(
            make_engine().evaluate(other_snapshot, forecast)
        )
        assert report_a != report_b


class TestParentIsolation:
    def test_evaluation_does_not_advance_or_mutate_parent(self, fork):
        system, snapshot, forecast = fork
        before = (
            system.kernel.now,
            system.kernel.events_processed,
            system.collector.completed_requests,
            system.collector.failed_requests,
            len(system.collector.latencies),
            system.app_tier.replica_count,
            system.db_tier.replica_count,
            system.cluster.free_count,
        )
        make_engine().evaluate(snapshot, forecast)
        after = (
            system.kernel.now,
            system.kernel.events_processed,
            system.collector.completed_requests,
            system.collector.failed_requests,
            len(system.collector.latencies),
            system.app_tier.replica_count,
            system.db_tier.replica_count,
            system.cluster.free_count,
        )
        assert before == after

    def test_parent_finishes_identically_with_and_without_whatif(self):
        end = RampProfile(**RAMP).duration_s

        def finish(evaluate: bool) -> tuple:
            system = build_system()
            snapshot = run_to_fork(system, FORK_AT)
            if evaluate:
                make_engine().evaluate(snapshot, forecast_from(system))
            system.kernel.run(until=end)
            col = system.collector
            return (
                col.completed_requests,
                col.failed_requests,
                [tuple(c) for c in col.tier_replicas["database"].changes],
                round(col.latencies.window(0.0, end).mean(), 12),
            )

        assert finish(evaluate=False) == finish(evaluate=True)


class TestCandidates:
    def test_replica_counts_validated(self):
        with pytest.raises(ValueError):
            Candidate(0, 1)
        with pytest.raises(ValueError):
            Candidate(1, -1)

    def test_label(self):
        assert Candidate(2, 3).label == "app2/db3"

    def test_default_candidates_at_floor_deduplicates(self, fork):
        _, snapshot, _ = fork
        floor = SystemSnapshot(
            t=snapshot.t,
            seed=snapshot.seed,
            clients=snapshot.clients,
            app_replicas=1,
            db_replicas=1,
            free_nodes=snapshot.free_nodes,
            pool_nodes=snapshot.pool_nodes,
            node_speed=snapshot.node_speed,
            thrashing=snapshot.thrashing,
            app_cpu=snapshot.app_cpu,
            db_cpu=snapshot.db_cpu,
            inhibition_free_at=snapshot.inhibition_free_at,
            calibration=snapshot.calibration,
        )
        candidates = default_candidates(floor)
        labels = [c.label for c in candidates]
        assert labels == ["app1/db1", "app2/db1", "app1/db2", "app2/db2"]
        assert len(set(labels)) == len(labels)

    def test_max_delta_widens_neighbourhood(self, fork):
        _, snapshot, _ = fork
        wide = default_candidates(snapshot, max_delta=2)
        assert len(wide) > len(default_candidates(snapshot, max_delta=1))


class TestPoolExhaustion:
    def test_oversized_candidate_is_infeasible(self):
        # A 5-node pool: 2 balancers + tomcat1 + mysql1 leaves one free
        # node, so app2/db2 cannot be hosted.
        snapshot = SystemSnapshot(
            t=100.0,
            seed=3,
            clients=60,
            app_replicas=1,
            db_replicas=1,
            free_nodes=1,
            pool_nodes=5,
            node_speed=1.0,
            thrashing=False,
            app_cpu=0.5,
            db_cpu=0.6,
            inhibition_free_at=float("-inf"),
            calibration=DEFAULT_CALIBRATION,
        )
        forecast = [(115.0, 70.0), (130.0, 80.0)]
        engine = make_engine()
        outcomes = engine.evaluate(
            snapshot, forecast, [Candidate(1, 1), Candidate(2, 2)]
        )
        by_label = {o.candidate.label: o for o in outcomes}
        assert by_label["app1/db1"].feasible
        assert not by_label["app2/db2"].feasible
        assert by_label["app2/db2"].error == "no-free-node"
        assert math.isinf(by_label["app2/db2"].cost.total)
        # Ranking skips the infeasible candidate.
        assert engine.best(outcomes).candidate.label == "app1/db1"

    def test_all_infeasible_raises(self):
        snapshot = SystemSnapshot(
            t=100.0,
            seed=3,
            clients=60,
            app_replicas=1,
            db_replicas=1,
            free_nodes=0,
            pool_nodes=4,
            node_speed=1.0,
            thrashing=False,
            app_cpu=0.5,
            db_cpu=0.6,
            inhibition_free_at=float("-inf"),
            calibration=DEFAULT_CALIBRATION,
        )
        engine = make_engine()
        outcomes = engine.evaluate(snapshot, [(115.0, 70.0)], [Candidate(3, 3)])
        assert not outcomes[0].feasible
        with pytest.raises(ValueError, match="no feasible"):
            engine.best(outcomes)


class TestEngineContract:
    def test_node_seconds_accounts_tiers_and_balancers(self, fork):
        _, snapshot, forecast = fork
        engine = make_engine()
        outcome = engine.evaluate(snapshot, forecast, [Candidate(1, 1)])[0]
        window = engine.horizon_s
        floor = (BALANCER_NODES + 2) * window  # 2 balancers + app1 + db1
        assert outcome.node_seconds >= floor - 1e-6

    def test_run_to_fork_rejects_started_system(self):
        system = build_system()
        system.kernel.run(until=1.0)
        with pytest.raises(ValueError, match="freshly built"):
            run_to_fork(system, 10.0)

    def test_run_to_fork_rejects_started_emulator(self):
        # Regression: a system whose emulator was started (but whose clock
        # never advanced) must also be rejected — run_to_fork would start
        # the emulator a second time.
        system = build_system()
        system.emulator.start()
        with pytest.raises(ValueError, match="freshly built"):
            run_to_fork(system, 10.0)

    def test_run_to_fork_rejects_processed_events(self):
        system = build_system()
        system.kernel.schedule(0.0, lambda: None)
        system.kernel.run(until=0.0)
        assert system.kernel.now == 0.0  # clock alone would not catch it
        assert system.kernel.events_processed > 0
        with pytest.raises(ValueError, match="freshly built"):
            run_to_fork(system, 10.0)

    def test_engine_validates_windows(self):
        with pytest.raises(ValueError):
            WhatIfEngine(horizon_s=0.0)
        with pytest.raises(ValueError):
            WhatIfEngine(warmup_s=-1.0)

    def test_report_is_sorted_canonical_json(self, fork):
        _, snapshot, forecast = fork
        engine = make_engine()
        report = engine.report(engine.evaluate(snapshot, forecast, [Candidate(1, 1)]))
        import json

        parsed = json.loads(report)
        assert isinstance(parsed, list)
        assert list(parsed[0]) == sorted(parsed[0])


class TestParallelEvaluation:
    def test_parallel_report_byte_identical_to_serial(self, fork):
        _, snapshot, forecast = fork
        serial = make_engine()
        serial_report = serial.report(serial.evaluate(snapshot, forecast))
        parallel = WhatIfEngine(
            horizon_s=45.0,
            warmup_s=40.0,
            cost_model=CostModel(),
            parallel=True,
            max_workers=2,
        )
        parallel_report = parallel.report(parallel.evaluate(snapshot, forecast))
        assert parallel_report == serial_report

    def test_parallel_winner_matches_serial(self, fork):
        _, snapshot, forecast = fork
        serial = make_engine()
        parallel = WhatIfEngine(
            horizon_s=45.0,
            warmup_s=40.0,
            cost_model=CostModel(),
            parallel=True,
            max_workers=2,
        )
        serial_best = serial.best(serial.evaluate(snapshot, forecast))
        parallel_best = parallel.best(parallel.evaluate(snapshot, forecast))
        assert parallel_best.candidate == serial_best.candidate


class TestWarmedBranchCache:
    def make_cached_engine(self, tmp_path) -> WhatIfEngine:
        return WhatIfEngine(
            horizon_s=45.0,
            warmup_s=40.0,
            cost_model=CostModel(),
            cache=ResultCache(tmp_path / "cache"),
        )

    def test_first_evaluation_misses_then_hits(self, fork, tmp_path):
        _, snapshot, forecast = fork
        cold = self.make_cached_engine(tmp_path)
        cold_out = cold.evaluate(snapshot, forecast)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(cold_out)
        assert cold.branches_run == len(cold_out)

        warm = self.make_cached_engine(tmp_path)
        warm_out = warm.evaluate(snapshot, forecast)
        assert warm.cache_hits == len(warm_out)
        assert warm.cache_misses == 0
        assert warm.branches_run == 0  # replayed nothing
        assert warm.report(warm_out) == cold.report(cold_out)

    def test_cached_report_byte_identical_to_uncached(self, fork, tmp_path):
        _, snapshot, forecast = fork
        plain = make_engine()
        plain_report = plain.report(plain.evaluate(snapshot, forecast))
        cached = self.make_cached_engine(tmp_path)
        cached.evaluate(snapshot, forecast)
        warm = self.make_cached_engine(tmp_path)
        assert warm.report(warm.evaluate(snapshot, forecast)) == plain_report

    def test_candidates_share_warm_fingerprint(self, fork):
        _, snapshot, forecast = fork
        engine = make_engine()
        specs = [
            engine.branch_spec(snapshot, forecast, c)
            for c in default_candidates(snapshot)
        ]
        assert len({warm_fingerprint(s) for s in specs}) == 1

    def test_forecast_changes_warm_fingerprint(self, fork):
        _, snapshot, forecast = fork
        engine = make_engine()
        a = engine.branch_spec(snapshot, forecast, Candidate(1, 1))
        bumped = [(t, v + 10.0) for t, v in forecast]
        b = engine.branch_spec(snapshot, bumped, Candidate(1, 1))
        assert warm_fingerprint(a) != warm_fingerprint(b)

    def test_fingerprint_invariant_to_decision_time(self, fork):
        # Two decisions at different absolute times under identical
        # conditions share cache entries: the spec normalizes the
        # forecast to offsets from the snapshot instant.
        _, snapshot, forecast = fork
        from dataclasses import replace

        engine = make_engine()
        shifted_snapshot = replace(snapshot, t=snapshot.t + 100.0)
        shifted_forecast = [(t + 100.0, v) for t, v in forecast]
        a = engine.branch_spec(snapshot, forecast, Candidate(1, 1))
        b = engine.branch_spec(shifted_snapshot, shifted_forecast, Candidate(1, 1))
        assert a == b
        assert warm_fingerprint(a) == warm_fingerprint(b)


class TestDominancePruning:
    def make_pruning_engine(self, **kwargs) -> WhatIfEngine:
        return WhatIfEngine(
            horizon_s=45.0,
            warmup_s=40.0,
            cost_model=CostModel(),
            prune=True,
            prune_check_s=10.0,
            **kwargs,
        )

    def test_pruning_never_changes_selected_candidate(self, fork):
        _, snapshot, forecast = fork
        serial = make_engine()
        serial_out = serial.evaluate(snapshot, forecast)
        pruning = self.make_pruning_engine()
        pruned_out = pruning.evaluate(snapshot, forecast)
        assert (
            pruning.best(pruned_out).candidate
            == serial.best(serial_out).candidate
        )

    def test_pruned_outcomes_cost_above_winner(self, fork):
        _, snapshot, forecast = fork
        engine = self.make_pruning_engine()
        outcomes = engine.evaluate(snapshot, forecast)
        best_total = engine.best(outcomes).cost.total
        for outcome in outcomes:
            if outcome.pruned:
                assert outcome.cost.total > best_total

    def test_non_pruned_records_identical_to_serial(self, fork):
        _, snapshot, forecast = fork
        serial_out = make_engine().evaluate(snapshot, forecast)
        pruned_out = self.make_pruning_engine().evaluate(snapshot, forecast)
        for pruned, plain in zip(pruned_out, serial_out):
            if not pruned.pruned:
                assert pruned.to_record() == plain.to_record()

    def test_pruning_composes_with_parallel(self, fork):
        _, snapshot, forecast = fork
        serial = make_engine()
        engine = self.make_pruning_engine(parallel=True, max_workers=2)
        outcomes = engine.evaluate(snapshot, forecast)
        assert (
            engine.best(outcomes).candidate
            == serial.best(serial.evaluate(snapshot, forecast)).candidate
        )
