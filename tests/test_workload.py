"""Tests for the RUBiS workload model, profiles and client emulator."""

import numpy as np
import pytest

from repro.metrics import MetricsCollector
from repro.simulation import RngStreams, SimKernel
from repro.workload import (
    ClientEmulator,
    ConstantProfile,
    DEFAULT_CALIBRATION,
    INTERACTIONS,
    MarkovNavigator,
    MixNavigator,
    PiecewiseProfile,
    RampProfile,
    RubisModel,
)
from repro.workload.rubis import interaction, transition_table


class TestInteractionTable:
    def test_exactly_26_interactions(self):
        assert len(INTERACTIONS) == 26

    def test_mix_weights_sum_to_one(self):
        assert sum(i.mix_weight for i in INTERACTIONS) == pytest.approx(1.0)

    def test_write_fraction_matches_calibration(self):
        writes = sum(i.mix_weight for i in INTERACTIONS if i.is_write)
        assert writes == pytest.approx(DEFAULT_CALIBRATION.write_fraction)

    def test_app_factor_weighted_mean_is_one(self):
        mean = sum(i.mix_weight * i.app_factor for i in INTERACTIONS)
        assert mean == pytest.approx(1.0)

    def test_db_factor_weighted_means_are_one(self):
        wf = DEFAULT_CALIBRATION.write_fraction
        reads = sum(
            i.mix_weight * i.db_factor for i in INTERACTIONS if not i.is_write
        ) / (1 - wf)
        writes = sum(
            i.mix_weight * i.db_factor for i in INTERACTIONS if i.is_write
        ) / wf
        assert reads == pytest.approx(1.0)
        assert writes == pytest.approx(1.0)

    def test_known_write_interactions(self):
        writers = {i.name for i in INTERACTIONS if i.is_write}
        assert writers == {
            "RegisterUser",
            "StoreBuyNow",
            "StoreBid",
            "StoreComment",
            "RegisterItem",
        }

    def test_lookup(self):
        assert interaction("ViewItem").name == "ViewItem"
        with pytest.raises(KeyError):
            interaction("Ghost")


class TestTransitionTable:
    def test_all_states_present(self):
        table = transition_table()
        names = {i.name for i in INTERACTIONS}
        assert set(table) == names

    def test_all_successors_valid(self):
        names = {i.name for i in INTERACTIONS}
        for state, successors in transition_table().items():
            for nxt, weight in successors:
                assert nxt in names, f"{state} -> {nxt}"
                assert weight > 0

    def test_markov_reaches_every_interaction(self):
        nav = MarkovNavigator(np.random.default_rng(0))
        seen = {nav.next_interaction().name for _ in range(20_000)}
        assert seen == {i.name for i in INTERACTIONS}

    def test_markov_write_fraction_plausible(self):
        nav = MarkovNavigator(np.random.default_rng(0))
        writes = sum(nav.next_interaction().is_write for _ in range(30_000))
        assert 0.05 < writes / 30_000 < 0.30

    def test_markov_reset(self):
        nav = MarkovNavigator(np.random.default_rng(0))
        for _ in range(5):
            nav.next_interaction()
        nav.reset()
        assert nav.next_interaction().name == "Home"


class TestMixNavigator:
    def test_matches_mix_distribution(self):
        nav = MixNavigator(np.random.default_rng(0))
        counts = {}
        n = 50_000
        for _ in range(n):
            name = nav.next_interaction().name
            counts[name] = counts.get(name, 0) + 1
        for inter in INTERACTIONS:
            if inter.mix_weight > 0.02:
                observed = counts.get(inter.name, 0) / n
                assert observed == pytest.approx(inter.mix_weight, rel=0.2)


class TestRubisModel:
    def test_demands_scale_with_factors(self, kernel):
        from dataclasses import replace

        cal = replace(DEFAULT_CALIBRATION, demand_gamma_shape=0.0)  # deterministic
        model = RubisModel(kernel, cal)
        search = model.make_request(interaction("SearchItemsInCategory"))
        home = model.make_request(interaction("Home"))
        assert search.db_demand > home.db_demand
        assert search.app_demand_pre > home.app_demand_pre

    def test_write_flag_propagates(self, kernel):
        model = RubisModel(kernel)
        req = model.make_request(interaction("StoreBid"))
        assert req.is_write

    def test_mean_demand_matches_calibration(self, kernel):
        model = RubisModel(kernel, rng=np.random.default_rng(0))
        nav = MixNavigator(np.random.default_rng(1))
        db, app = [], []
        for _ in range(20_000):
            req = model.make_request(nav.next_interaction())
            app.append(req.app_demand_pre + req.app_demand_post)
            if not req.is_write:
                db.append(req.db_demand)
        cal = DEFAULT_CALIBRATION
        assert np.mean(app) == pytest.approx(cal.app_demand_total(), rel=0.05)
        assert np.mean(db) == pytest.approx(cal.db_read_demand_s, rel=0.05)

    def test_gamma_variability(self, kernel):
        model = RubisModel(kernel, rng=np.random.default_rng(0))
        demands = [
            model.make_request(interaction("ViewItem")).db_demand
            for _ in range(2000)
        ]
        cv = np.std(demands) / np.mean(demands)
        assert cv == pytest.approx(0.5, rel=0.15)  # gamma shape 4 => CV 0.5


class TestProfiles:
    def test_constant(self):
        p = ConstantProfile(80, 100.0)
        assert p.clients_at(0.0) == 80
        assert p.clients_at(100.0) == 80
        assert p.clients_at(101.0) == 0
        assert p.peak() == 80
        assert p.duration_s == 100.0

    def test_ramp_matches_paper_shape(self):
        p = RampProfile()  # defaults: 80 -> 500 -> 80, +21/min
        assert p.clients_at(0.0) == 80
        assert p.clients_at(299.0) == 80        # warmup
        assert p.clients_at(301.0) == 101       # first step
        assert p.clients_at(300.0 + 18 * 60.0 + 1) == 479
        assert p.clients_at(300.0 + 19 * 60.0 + 1) == 500
        assert p.clients_at(p.warmup_s + p.ramp_s + 59.0) == 500  # mirror
        assert p.clients_at(p.warmup_s + p.ramp_s + 61.0) == 479
        assert p.clients_at(p.duration_s - 1.0) == 80
        assert p.peak() == 500
        assert p.duration_s == 3000.0  # 300 + 1200 + 1200 + 300

    def test_ramp_symmetry(self):
        p = RampProfile()
        mid = p.warmup_s + p.ramp_s
        for dt in (30.0, 300.0, 600.0):
            assert p.clients_at(mid - dt) == p.clients_at(mid + dt - 1e-9)

    def test_ramp_with_hold(self):
        p = RampProfile(hold_s=600.0)
        mid = p.warmup_s + p.ramp_s
        assert p.clients_at(mid + 300.0) == 500
        assert p.duration_s == 3600.0

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            RampProfile(base=100, peak=50)
        with pytest.raises(ValueError):
            RampProfile(step_clients=0)

    def test_piecewise(self):
        p = PiecewiseProfile([(0.0, 10), (50.0, 30), (80.0, 5)], duration_s=100.0)
        assert p.clients_at(10.0) == 10
        assert p.clients_at(60.0) == 30
        assert p.clients_at(90.0) == 5
        assert p.clients_at(150.0) == 0

    def test_piecewise_requires_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseProfile([], duration_s=10.0)

    def test_ramp_with_zero_duration_ramp_segment(self):
        # peak == base: the staircase degenerates to nothing and the
        # profile is flat end to end.
        p = RampProfile(base=80, peak=80, warmup_s=100.0, cooldown_s=100.0)
        assert p.steps == 0
        assert p.ramp_s == 0.0
        assert p.duration_s == 200.0
        for t in (0.0, 50.0, 100.0, 150.0, 199.0):
            assert p.clients_at(t) == 80
        assert p.peak() == 80

    def test_ramp_with_zero_warmup_and_cooldown(self):
        p = RampProfile(
            base=80, peak=122, step_clients=21, step_period_s=60.0,
            warmup_s=0.0, cooldown_s=0.0,
        )
        # The first step applies immediately; the descent ends the profile.
        assert p.clients_at(0.0) == 101
        assert p.clients_at(61.0) == 122
        assert p.duration_s == 2 * p.ramp_s
        assert p.clients_at(p.duration_s - 1.0) == 101

    def test_piecewise_zero_duration_segment(self):
        # Two breakpoints at the same instant: breakpoints are sorted, so
        # the one ordering last at that time wins and zero time is spent
        # at the other — the population never dips through it.
        p = PiecewiseProfile(
            [(0.0, 10), (50.0, 99), (50.0, 30), (80.0, 5)], duration_s=100.0
        )
        assert p.clients_at(49.9) == 10
        assert p.clients_at(50.0) == 99
        assert p.clients_at(79.9) == 99
        assert p.clients_at(80.0) == 5

    def test_single_client_profile(self):
        p = ConstantProfile(1, 60.0)
        assert p.peak() == 1
        assert p.clients_at(30.0) == 1


class CountingEntry:
    """Entry point that completes every request after a fixed delay."""

    def __init__(self, kernel, delay=0.05):
        self.kernel = kernel
        self.delay = delay
        self.count = 0

    def __call__(self, request):
        self.count += 1
        self.kernel.schedule(self.delay, request.complete, self.kernel)


class TestClientEmulator:
    def make(self, kernel, profile):
        entry = CountingEntry(kernel)
        collector = MetricsCollector()
        emulator = ClientEmulator(
            kernel,
            entry=entry,
            profile=profile,
            collector=collector,
            streams=RngStreams(3),
        )
        return emulator, entry, collector

    def test_population_follows_constant_profile(self, kernel):
        emulator, entry, _ = self.make(kernel, ConstantProfile(25, 60.0))
        emulator.start()
        kernel.run(until=30.0)
        assert emulator.active_clients == 25

    def test_throughput_matches_interactive_law(self, kernel):
        """X = N / (Z + R): 50 clients, Z = 6.5 s, R = 0.05 s -> ~7.6 req/s."""
        emulator, entry, collector = self.make(kernel, ConstantProfile(50, 600.0))
        emulator.start()
        kernel.run(until=600.0)
        x = collector.throughput(100.0, 600.0)
        assert x == pytest.approx(50 / 6.55, rel=0.1)

    def test_population_ramps_up_and_down(self, kernel):
        profile = PiecewiseProfile([(0.0, 5), (50.0, 20), (100.0, 3)], 200.0)
        emulator, *_ = self.make(kernel, profile)
        emulator.start()
        kernel.run(until=40.0)
        assert emulator.active_clients == 5
        kernel.run(until=90.0)
        assert emulator.active_clients == 20
        kernel.run(until=140.0)
        assert emulator.active_clients == 3

    def test_latencies_recorded(self, kernel):
        emulator, entry, collector = self.make(kernel, ConstantProfile(10, 120.0))
        emulator.start()
        kernel.run(until=120.0)
        assert collector.completed_requests == entry.count
        assert collector.latencies.values.mean() == pytest.approx(0.05, abs=1e-6)

    def test_single_client_session(self, kernel):
        """The degenerate one-client population still behaves: exactly one
        session, think-time gaps between requests, everything completes."""
        emulator, entry, collector = self.make(kernel, ConstantProfile(1, 300.0))
        emulator.start()
        kernel.run(until=150.0)
        assert emulator.active_clients == 1
        kernel.run(until=300.0)
        assert entry.count > 1
        assert collector.completed_requests == entry.count
        assert collector.failed_requests == 0
        # The interactive law X = 1 / (Z + R) holds only in expectation —
        # a single client's think times leave a wide variance band.
        assert 0.5 * (1 / 6.55) < collector.throughput(50.0, 300.0) < 2 * (1 / 6.55)

    def test_failures_recorded_and_clients_continue(self, kernel):
        class FailingEntry:
            def __init__(self, kernel):
                self.kernel = kernel
                self.count = 0

            def __call__(self, request):
                self.count += 1
                request.fail(self.kernel, "boom")

        collector = MetricsCollector()
        emulator = ClientEmulator(
            kernel,
            entry=FailingEntry(kernel),
            profile=ConstantProfile(5, 120.0),
            collector=collector,
            streams=RngStreams(3),
        )
        emulator.start()
        kernel.run(until=120.0)
        assert collector.failed_requests > 5  # clients kept going after errors
        assert collector.completed_requests == 0

    def test_stop_deactivates_everyone(self, kernel):
        emulator, *_ = self.make(kernel, ConstantProfile(10, 1000.0))
        emulator.start()
        kernel.run(until=20.0)
        emulator.stop()
        kernel.run(until=100.0)
        assert emulator.active_clients == 0

    def test_deterministic_with_seed(self):
        def run_once():
            kernel = SimKernel()
            entry = CountingEntry(kernel)
            collector = MetricsCollector()
            emulator = ClientEmulator(
                kernel,
                entry=entry,
                profile=ConstantProfile(20, 100.0),
                collector=collector,
                streams=RngStreams(11),
            )
            emulator.start()
            kernel.run(until=100.0)
            return entry.count, tuple(collector.latencies.times[:20])

        assert run_once() == run_once()


class TestAbandonment:
    def make_slow_entry(self, kernel, delay):
        class SlowEntry:
            def __init__(self):
                self.count = 0

            def __call__(self, request):
                self.count += 1
                kernel.schedule(delay, request.complete, kernel)

        return SlowEntry()

    def test_clients_abandon_slow_requests(self, kernel):
        from repro.workload.clients import ClientEmulator
        from repro.simulation import RngStreams
        from repro.metrics import MetricsCollector

        entry = self.make_slow_entry(kernel, delay=10.0)
        collector = MetricsCollector()
        emulator = ClientEmulator(
            kernel,
            entry=entry,
            profile=ConstantProfile(10, 300.0),
            collector=collector,
            streams=RngStreams(3),
            request_timeout_s=2.0,
        )
        emulator.start()
        kernel.run(until=300.0)
        assert emulator.abandoned > 0
        assert collector.failed_requests == emulator.abandoned
        assert collector.completed_requests == 0

    def test_fast_requests_not_abandoned(self, kernel):
        from repro.workload.clients import ClientEmulator
        from repro.simulation import RngStreams
        from repro.metrics import MetricsCollector

        entry = self.make_slow_entry(kernel, delay=0.05)
        collector = MetricsCollector()
        emulator = ClientEmulator(
            kernel,
            entry=entry,
            profile=ConstantProfile(10, 200.0),
            collector=collector,
            streams=RngStreams(3),
            request_timeout_s=2.0,
        )
        emulator.start()
        kernel.run(until=200.0)
        assert emulator.abandoned == 0
        assert collector.failed_requests == 0
        assert collector.completed_requests == entry.count

    def test_abandoning_client_continues_session(self, kernel):
        from repro.workload.clients import ClientEmulator
        from repro.simulation import RngStreams
        from repro.metrics import MetricsCollector

        entry = self.make_slow_entry(kernel, delay=10.0)
        collector = MetricsCollector()
        emulator = ClientEmulator(
            kernel,
            entry=entry,
            profile=ConstantProfile(1, 500.0),
            collector=collector,
            streams=RngStreams(3),
            request_timeout_s=1.0,
        )
        emulator.start()
        kernel.run(until=500.0)
        # One client kept issuing requests despite every one timing out.
        assert entry.count > 10
