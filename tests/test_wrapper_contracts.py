"""Contract tests for the wrapper base class and endpoint surfaces."""

import pytest

from repro.cluster import make_nodes
from repro.wrappers import (
    WrapperError,
    make_apache_component,
    make_cjdbc_component,
    make_mysql_component,
    make_plb_component,
    make_tomcat_component,
)
from repro.wrappers.base import LegacyWrapper


@pytest.fixture
def env(kernel, lan, directory):
    nodes = make_nodes(kernel, 6)
    kw = dict(kernel=kernel, directory=directory, lan=lan)
    return nodes, kw


class TestEndpointContracts:
    def test_unknown_interface_endpoints_rejected(self, env):
        nodes, kw = env
        cases = [
            (make_apache_component("a", node=nodes[0], **kw), "ajp"),
            (make_tomcat_component("t", node=nodes[1], **kw), "jdbc"),
            (make_mysql_component("m", node=nodes[2], **kw), "http"),
            (make_cjdbc_component("c", node=nodes[3], **kw), "backends"),
            (make_plb_component("p", node=nodes[4], **kw), "workers"),
        ]
        for component, bad_itf in cases:
            with pytest.raises(WrapperError):
                component.content.endpoint(bad_itf)

    def test_known_endpoints_return_node_host(self, env):
        nodes, kw = env
        apache = make_apache_component("a", {"port": 81}, node=nodes[0], **kw)
        assert apache.content.endpoint("http") == (nodes[0].name, 81)
        mysql = make_mysql_component("m", {"port": 3310}, node=nodes[1], **kw)
        assert mysql.content.endpoint("mysql") == (nodes[1].name, 3310)
        assert mysql.content.endpoint("jdbc") == (nodes[1].name, 3310)

    def test_jdbc_driver_contract(self, env):
        nodes, kw = env
        assert make_mysql_component("m", node=nodes[0], **kw).content.jdbc_driver() == "mysql"
        assert make_cjdbc_component("c", node=nodes[1], **kw).content.jdbc_driver() == "cjdbc"
        with pytest.raises(WrapperError):
            make_apache_component("a", node=nodes[2], **kw).content.jdbc_driver()


class TestLifecycleContracts:
    def test_wrapper_running_reflects_server(self, env):
        nodes, kw = env
        mysql = make_mysql_component("m", node=nodes[0], **kw)
        assert not mysql.content.running
        mysql.start()
        assert mysql.content.running
        mysql.stop()
        assert not mysql.content.running

    def test_startup_times_declared(self, env):
        nodes, kw = env
        components = [
            make_apache_component("a", node=nodes[0], **kw),
            make_tomcat_component("t", node=nodes[1], **kw),
            make_mysql_component("m", node=nodes[2], **kw),
        ]
        for comp in components:
            assert comp.content.startup_time_s > 0

    def test_abstract_wrapper_contract(self, kernel, lan, directory):
        nodes = make_nodes(kernel, 1)
        wrapper = LegacyWrapper(kernel, nodes[0], directory, lan)
        with pytest.raises(NotImplementedError):
            wrapper.write_config()
        with pytest.raises(NotImplementedError):
            wrapper.endpoint("x")

    def test_attr_helper_defaults(self, env):
        nodes, kw = env
        mysql = make_mysql_component("m", node=nodes[0], **kw)
        assert mysql.content._attr("port") == 3306
        assert mysql.content._attr("ghost", "fallback") == "fallback"

    def test_config_regenerated_from_management_state(self, env):
        """Deleting the legacy file and rewriting from the wrapper restores
        identical content — the management layer is the source of truth."""
        nodes, kw = env
        mysql = make_mysql_component("m", {"port": 3311}, node=nodes[0], **kw)
        original = nodes[0].fs.read("/etc/mysql/my.cnf")
        nodes[0].fs.delete("/etc/mysql/my.cnf")
        mysql.content.write_config()
        assert nodes[0].fs.read("/etc/mysql/my.cnf") == original
