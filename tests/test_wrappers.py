"""Tests for the Fractal wrappers: management operations must be reflected
into the proprietary legacy configuration, and never bypass it."""

import pytest

from repro.cluster import make_nodes
from repro.fractal import IllegalBindingError, IllegalLifecycleError
from repro.legacy import WebRequest
from repro.legacy.cjdbc import BackendState
from repro.legacy.configfiles import (
    CjdbcXml,
    HttpdConf,
    MyCnf,
    PlbConf,
    ServerXml,
    WorkerProperties,
)
from repro.wrappers import (
    WrapperError,
    make_apache_component,
    make_cjdbc_component,
    make_l4switch_component,
    make_mysql_component,
    make_plb_component,
    make_tomcat_component,
)


@pytest.fixture
def ctx(kernel, lan, directory):
    nodes = make_nodes(kernel, 8)
    return {
        "kernel": kernel,
        "lan": lan,
        "directory": directory,
        "nodes": nodes,
    }


def build_full_stack(ctx):
    """mysql + cjdbc + tomcat + plb components, bound and started."""
    kw = dict(kernel=ctx["kernel"], directory=ctx["directory"], lan=ctx["lan"])
    mysql = make_mysql_component("mysql1", node=ctx["nodes"][0], **kw)
    cjdbc = make_cjdbc_component("cjdbc1", node=ctx["nodes"][1], **kw)
    tomcat = make_tomcat_component("tomcat1", node=ctx["nodes"][2], **kw)
    plb = make_plb_component("plb1", node=ctx["nodes"][3], **kw)
    cjdbc.bind("backends", mysql.get_interface("mysql"))
    tomcat.bind("jdbc", cjdbc.get_interface("jdbc"))
    plb.bind("workers", tomcat.get_interface("http"))
    for comp in (mysql, cjdbc, tomcat, plb):
        comp.start()
    return mysql, cjdbc, tomcat, plb


class TestApacheWrapper:
    def test_attributes_reflected_in_httpd_conf(self, ctx):
        node = ctx["nodes"][0]
        apache = make_apache_component(
            "apache1", {"port": 81}, node=node, **{k: ctx[k] for k in ("kernel", "directory", "lan")}
        )
        conf = HttpdConf.parse(node.fs.read("/etc/apache/httpd.conf"))
        assert conf.listen == 81
        apache.set_attr("max_clients", 99)
        conf = HttpdConf.parse(node.fs.read("/etc/apache/httpd.conf"))
        assert conf.max_clients == 99

    def test_port_change_requires_stop(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        apache = make_apache_component("apache1", node=ctx["nodes"][0], **kw)
        apache.start()
        with pytest.raises(WrapperError):
            apache.set_attr("port", 8081)
        apache.stop()
        apache.set_attr("port", 8081)
        assert HttpdConf.parse(ctx["nodes"][0].fs.read("/etc/apache/httpd.conf")).listen == 8081

    def test_bind_writes_worker_properties(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        apache = make_apache_component("apache1", node=ctx["nodes"][0], **kw)
        tomcat = make_tomcat_component("tomcat1", node=ctx["nodes"][1], **kw)
        apache.bind("ajp", tomcat.get_interface("ajp"))
        wp = WorkerProperties.parse(
            ctx["nodes"][0].fs.read("/etc/apache/worker.properties")
        )
        assert wp.workers[0].host == ctx["nodes"][1].name
        assert wp.workers[0].port == 8009

    def test_paper_5_1_reconfiguration_scenario(self, ctx):
        """stop / unbind / bind / start — and the legacy file follows."""
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        apache1 = make_apache_component("apache1", node=ctx["nodes"][0], **kw)
        tomcat1 = make_tomcat_component("tomcat1", node=ctx["nodes"][1], **kw)
        tomcat2 = make_tomcat_component("tomcat2", node=ctx["nodes"][2], **kw)
        inst = apache1.bind("ajp", tomcat1.get_interface("ajp"))
        apache1.start()
        # Rebinding while started must fail: mod_jk is static.
        with pytest.raises(IllegalBindingError):
            apache1.unbind(inst)
        apache1.stop()
        apache1.unbind(inst)
        apache1.bind("ajp", tomcat2.get_interface("ajp"))
        apache1.start()
        wp = WorkerProperties.parse(
            ctx["nodes"][0].fs.read("/etc/apache/worker.properties")
        )
        assert [w.host for w in wp.workers] == [ctx["nodes"][2].name]


class TestTomcatWrapper:
    def test_requires_jdbc_binding_to_start(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        tomcat = make_tomcat_component("tomcat1", node=ctx["nodes"][0], **kw)
        with pytest.raises(IllegalLifecycleError):
            tomcat.start()

    def test_bind_to_cjdbc_sets_datasource(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        tomcat = make_tomcat_component("tomcat1", node=ctx["nodes"][0], **kw)
        cjdbc = make_cjdbc_component("cjdbc1", node=ctx["nodes"][1], **kw)
        tomcat.bind("jdbc", cjdbc.get_interface("jdbc"))
        conf = ServerXml.parse(ctx["nodes"][0].fs.read("/etc/tomcat/server.xml"))
        assert conf.datasource_url == f"jdbc:cjdbc://{ctx['nodes'][1].name}:25322/rubis"

    def test_bind_direct_to_mysql_uses_mysql_driver(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        tomcat = make_tomcat_component("tomcat1", node=ctx["nodes"][0], **kw)
        mysql = make_mysql_component("mysql1", node=ctx["nodes"][1], **kw)
        tomcat.bind("jdbc", mysql.get_interface("jdbc"))
        conf = ServerXml.parse(ctx["nodes"][0].fs.read("/etc/tomcat/server.xml"))
        assert conf.datasource_url.startswith("jdbc:mysql://")

    def test_port_attributes(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        tomcat = make_tomcat_component(
            "tomcat1", {"http_port": 9090, "ajp_port": 9009}, node=ctx["nodes"][0], **kw
        )
        conf = ServerXml.parse(ctx["nodes"][0].fs.read("/etc/tomcat/server.xml"))
        assert conf.http_port == 9090
        assert conf.ajp_port == 9009


class TestMySqlWrapper:
    def test_config_written(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        make_mysql_component("mysql1", {"port": 3310}, node=ctx["nodes"][0], **kw)
        conf = MyCnf.parse(ctx["nodes"][0].fs.read("/etc/mysql/my.cnf"))
        assert conf.port == 3310

    def test_start_registers_endpoint(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        mysql = make_mysql_component("mysql1", node=ctx["nodes"][0], **kw)
        mysql.start()
        assert ctx["directory"].lookup(ctx["nodes"][0].name, 3306) is mysql.content.server


class TestCJdbcWrapper:
    def test_bind_updates_config_and_attaches_live(self, ctx):
        mysql, cjdbc, tomcat, plb = build_full_stack(ctx)
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        mysql2 = make_mysql_component("mysql2", node=ctx["nodes"][4], **kw)
        mysql2.start()
        instance = cjdbc.bind("backends", mysql2.get_interface("mysql"))
        ctx["kernel"].run()
        conf = CjdbcXml.parse(ctx["nodes"][1].fs.read("/etc/cjdbc/cjdbc.xml"))
        assert len(conf.backends) == 2
        controller = cjdbc.content.controller
        assert controller.backend(instance).state is BackendState.ENABLED

    def test_unbind_detaches_with_checkpoint(self, ctx):
        mysql, cjdbc, tomcat, plb = build_full_stack(ctx)
        kernel = ctx["kernel"]
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        mysql2 = make_mysql_component("mysql2", node=ctx["nodes"][4], **kw)
        mysql2.start()
        instance = cjdbc.bind("backends", mysql2.get_interface("mysql"))
        kernel.run()
        cjdbc.unbind(instance)
        controller = cjdbc.content.controller
        assert instance not in [b.name for b in controller.backends()]
        assert controller.log.checkpoint(instance) is not None
        conf = CjdbcXml.parse(ctx["nodes"][1].fs.read("/etc/cjdbc/cjdbc.xml"))
        assert len(conf.backends) == 1

    def test_bind_non_mysql_rejected(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        cjdbc = make_cjdbc_component("cjdbc1", node=ctx["nodes"][0], **kw)
        tomcat = make_tomcat_component("tomcat1", node=ctx["nodes"][1], **kw)
        # Give tomcat a fake 'mysql'-signature server interface to sneak past
        # the signature check; the wrapper's type check must still refuse.
        from repro.fractal.interfaces import InterfaceType, SERVER

        tomcat.add_interface_type(InterfaceType("fake", "mysql", role=SERVER))
        with pytest.raises(WrapperError):
            cjdbc.bind("backends", tomcat.get_interface("fake"))


class TestPlbWrapper:
    def test_bind_rewrites_conf_and_reloads_live(self, ctx):
        mysql, cjdbc, tomcat, plb = build_full_stack(ctx)
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        tomcat2 = make_tomcat_component("tomcat2", node=ctx["nodes"][4], **kw)
        tomcat2.bind("jdbc", cjdbc.get_interface("jdbc"))
        tomcat2.start()
        plb.bind("workers", tomcat2.get_interface("http"))
        conf = PlbConf.parse(ctx["nodes"][3].fs.read("/etc/plb/plb.conf"))
        assert len(conf.servers) == 2
        # Balancer picked it up live (no restart).
        assert plb.content.balancer.running
        assert len(plb.content.balancer.backend_endpoints) == 2

    def test_end_to_end_request_through_components(self, ctx):
        mysql, cjdbc, tomcat, plb = build_full_stack(ctx)
        kernel = ctx["kernel"]
        req = WebRequest(
            kernel, "ViewItem", app_demand_pre=0.01, app_demand_post=0.001,
            db_demand=0.02,
        )
        results = []
        req.completion.add_callback(lambda s: results.append(s.error))
        plb.content.balancer.handle(req)
        kernel.run()
        assert results == [None]
        assert mysql.content.server.reads_served == 1


class TestL4SwitchWrapper:
    def test_bind_patches_endpoint(self, ctx):
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        apache = make_apache_component("apache1", node=ctx["nodes"][0], **kw)
        switch = make_l4switch_component(
            "l4", kernel=ctx["kernel"], directory=ctx["directory"], lan=ctx["lan"]
        )
        instance = switch.bind("web", apache.get_interface("http"))
        assert switch.content.switch.endpoints == [(ctx["nodes"][0].name, 80)]
        switch.start()
        switch.unbind(instance)
        assert switch.content.switch.endpoints == []

    def test_uniformity_of_management_interface(self, ctx):
        """The paper's punchline: hardware switch, web server and database
        all manage through the identical controller API."""
        kw = {k: ctx[k] for k in ("kernel", "directory", "lan")}
        components = [
            make_apache_component("a", node=ctx["nodes"][0], **kw),
            make_mysql_component("m", node=ctx["nodes"][1], **kw),
            make_l4switch_component(
                "l4", kernel=ctx["kernel"], directory=ctx["directory"]
            ),
        ]
        for comp in components:
            assert comp.lifecycle_controller is not None
            assert comp.binding_controller is not None
            assert comp.attribute_controller is not None
            comp.start()
            comp.stop()
